"""Worker-pool components (paper Section V-A), thread-safe.

Four structures make up a master or slave worker pool:

- :class:`ComputableStack` — LIFO of computable sub-task ids; idle workers
  pop the first entry their scheduling policy lets them take;
- :class:`FinishedStack` — LIFO of finished sub-task ids drained by the
  scheduling thread to update the DAG pattern;
- :class:`OvertimeQueue` — deadline-ordered record of executing sub-tasks,
  scanned by the fault-tolerance thread;
- :class:`RegisterTable` — which worker is executing which sub-task at
  which epoch; results from stale epochs are discarded.

All four are safe for concurrent access from the scheduling thread, the
per-slave worker threads, and the fault-tolerance thread.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.check.lock_lint import make_condition, make_lock
from repro.comm.messages import TaskId
from repro.schedulers.policy import SchedulingPolicy
from repro.utils.errors import SchedulerError


class ComputableStack:
    """Blocking LIFO of computable sub-tasks with policy-aware pops.

    ``depth_observer`` (optional) is called with the new depth after
    every mutation — the observability layer wires it to a queue-depth
    gauge/histogram. ``push_observer`` (optional) is called with each
    task id as it lands on the stack — the profiler wires it to a
    ready-timestamp table so the ``queue-wait`` span covers *every* push
    site (initial frontier, commit fan-out, fault re-queues, taint
    recompute) without the master chasing each one. Both run under the
    stack's condition, so observers must be cheap and must not touch
    runtime locks.
    """

    def __init__(
        self,
        depth_observer: Optional[Callable[[int], None]] = None,
        push_observer: Optional[Callable[[TaskId], None]] = None,
    ) -> None:
        self._items: List[TaskId] = []
        self._cond = make_condition("pool.computable-stack")
        self._closed = False
        self._depth_observer = depth_observer
        self._push_observer = push_observer

    def push(self, task_id: TaskId) -> None:
        with self._cond:
            self._items.append(task_id)
            if self._push_observer is not None:
                self._push_observer(task_id)
            if self._depth_observer is not None:
                self._depth_observer(len(self._items))
            self._cond.notify_all()

    def push_many(self, task_ids: Iterable[TaskId]) -> None:
        with self._cond:
            if self._push_observer is None:
                self._items.extend(task_ids)
            else:
                for task_id in task_ids:
                    self._items.append(task_id)
                    self._push_observer(task_id)
            if self._depth_observer is not None:
                self._depth_observer(len(self._items))
            self._cond.notify_all()

    def close(self) -> None:
        """Wake every blocked popper with a None (end of schedule)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def pop_eligible(
        self,
        worker_id: int,
        policy: SchedulingPolicy,
        timeout: Optional[float] = None,
    ) -> Optional[TaskId]:
        """Pop the newest task ``worker_id`` may take (LIFO scan).

        Blocks until an eligible task appears, the pool closes (returns
        None), or ``timeout`` elapses (returns None). Static policies can
        therefore leave a worker waiting here while other tasks sit on the
        stack — exactly the BCW pathology the evaluation measures.
        """
        with self._cond:
            while True:
                for idx in range(len(self._items) - 1, -1, -1):
                    if policy.eligible(worker_id, self._items[idx]):
                        picked = self._items.pop(idx)
                        if self._depth_observer is not None:
                            self._depth_observer(len(self._items))
                        return picked
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def retain(self, keep: Callable[[TaskId], bool]) -> Tuple[TaskId, ...]:
        """Drop every queued task for which ``keep`` is false.

        Taint invalidation uses this to pull successors of a revoked
        commit off the stack before a worker can pop them with stale
        inputs. Returns the removed tasks. ``keep`` runs under the
        stack's condition — it must be cheap and lock-free.
        """
        with self._cond:
            removed = tuple(t for t in self._items if not keep(t))
            if removed:
                self._items = [t for t in self._items if keep(t)]
                if self._depth_observer is not None:
                    self._depth_observer(len(self._items))
            return removed

    def snapshot(self) -> Tuple[TaskId, ...]:
        with self._cond:
            return tuple(self._items)

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)


class FinishedStack:
    """Blocking LIFO of finished sub-task ids."""

    def __init__(self) -> None:
        self._items: List[TaskId] = []
        self._cond = make_condition("pool.finished-stack")
        self._closed = False

    def push(self, task_id: TaskId) -> None:
        with self._cond:
            self._items.append(task_id)
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def pop(self, timeout: Optional[float] = None) -> Optional[TaskId]:
        """Pop the newest finished id; None on close or timeout."""
        with self._cond:
            while True:
                if self._items:
                    return self._items.pop()
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)


@dataclass(frozen=True)
class OvertimeEntry:
    """One executing sub-task being watched for timeout."""

    deadline: float
    task_id: TaskId
    epoch: int


class OvertimeQueue:
    """Deadline-ordered queue of executing sub-tasks.

    Entries are removed lazily: finishing a task simply bumps its epoch in
    the register table, and :meth:`due` skips entries whose epoch no
    longer matches. That keeps push/finish O(log n) without a delete.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, OvertimeEntry]] = []
        self._lock = make_lock("pool.overtime-queue")
        self._seq = 0

    def push(self, entry: OvertimeEntry) -> None:
        with self._lock:
            self._seq += 1
            heapq.heappush(self._heap, (entry.deadline, self._seq, entry))

    def due(self, now: float) -> List[OvertimeEntry]:
        """Pop and return every entry whose deadline has passed."""
        out: List[OvertimeEntry] = []
        with self._lock:
            while self._heap and self._heap[0][0] <= now:
                out.append(heapq.heappop(self._heap)[2])
        return out

    def next_deadline(self) -> Optional[float]:
        with self._lock:
            return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)


@dataclass
class Registration:
    """Current execution record of one sub-task."""

    worker_id: int
    epoch: int
    attempts: int
    #: Clock reading at dispatch (the caller's clock domain); lets the
    #: fault-tolerance thread age live registrations for speculation.
    registered_at: float = 0.0


class RegisterTable:
    """The sub-task registered table (Section V-A.4).

    A task registers when dispatched; its ``epoch`` counts dispatches.
    ``finish`` succeeds only when the reported epoch matches the live
    registration, which is how stale results from timed-out workers are
    rejected (Fig 9 step h's "if the sub-task is registered" check).
    """

    def __init__(self) -> None:
        self._live: Dict[TaskId, Registration] = {}
        self._attempts: Dict[TaskId, int] = {}
        self._lock = make_lock("pool.register-table")

    def register(self, task_id: TaskId, worker_id: int, now: float = 0.0) -> int:
        """Record a dispatch; returns the new epoch (== attempt index)."""
        with self._lock:
            if task_id in self._live:
                raise SchedulerError(f"task {task_id} already registered")
            epoch = self._attempts.get(task_id, 0)
            self._attempts[task_id] = epoch + 1
            self._live[task_id] = Registration(
                worker_id=worker_id, epoch=epoch, attempts=epoch + 1, registered_at=now
            )
            return epoch

    def prime(self, attempts: Dict[TaskId, int]) -> None:
        """Seed attempt counts from a recovered journal (resume path).

        Epochs must keep counting from where the crashed master stopped:
        a slave that survived the crash could, in principle, still hold a
        result stamped with a pre-crash epoch, and priming guarantees any
        post-resume dispatch outpaces it. Only callable before the first
        registration.
        """
        with self._lock:
            if self._live or self._attempts:
                raise SchedulerError("prime() after registrations began")
            self._attempts.update(attempts)

    def attempts_snapshot(self) -> Dict[TaskId, int]:
        """Copy of all attempt counters (journal checkpoints persist this)."""
        with self._lock:
            return dict(self._attempts)

    def finish(self, task_id: TaskId, epoch: int) -> bool:
        """Deregister on success; False if the epoch is stale/unknown."""
        with self._lock:
            reg = self._live.get(task_id)
            if reg is None or reg.epoch != epoch:
                return False
            del self._live[task_id]
            return True

    def cancel(self, task_id: TaskId, epoch: int) -> Optional[Registration]:
        """Deregister after a detected fault.

        Returns the cancelled :class:`Registration` (truthy — callers that
        only branch on success keep working) so fault attribution knows
        *which worker* held the dispatch; None if already gone/stale.
        """
        with self._lock:
            reg = self._live.get(task_id)
            if reg is None or reg.epoch != epoch:
                return None
            del self._live[task_id]
            return reg

    def live_snapshot(self) -> Tuple[Tuple[TaskId, Registration], ...]:
        """Point-in-time ``(task_id, registration)`` view of live dispatches."""
        with self._lock:
            return tuple(self._live.items())

    def is_registered(self, task_id: TaskId, epoch: Optional[int] = None) -> bool:
        with self._lock:
            reg = self._live.get(task_id)
            if reg is None:
                return False
            return epoch is None or reg.epoch == epoch

    def attempts(self, task_id: TaskId) -> int:
        """Total dispatch count of ``task_id`` so far."""
        with self._lock:
            return self._attempts.get(task_id, 0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._live)


@dataclass(frozen=True)
class Lease:
    """One granted per-task lease: the dispatch must be renewed (any
    message from its worker, heartbeats included) before ``expires_at``."""

    task_id: TaskId
    epoch: int
    worker_id: int
    expires_at: float


class LeaseTable:
    """Per-task liveness leases of the heartbeat protocol.

    A lease is *granted* at dispatch and *renewed* — for every lease its
    worker holds — whenever the master hears anything from that worker.
    :meth:`expired` pops leases past their deadline; like the
    :class:`OvertimeQueue`, removal is lazy: a lease whose (task, epoch)
    registration already finished is skipped, so finishing a task needs
    no lease bookkeeping. Expiry is a *liveness* fault (the worker went
    quiet), strictly earlier than the hard task timeout — which stays as
    the backstop for a worker that heartbeats but never answers.
    """

    def __init__(self) -> None:
        #: (task_id) -> live lease. One lease per task (matches the
        #: register table's one-live-dispatch-per-task invariant).
        self._leases: Dict[TaskId, Lease] = {}
        self._lock = make_lock("pool.lease-table")

    def grant(
        self, task_id: TaskId, epoch: int, worker_id: int, now: float, duration: float
    ) -> None:
        with self._lock:
            self._leases[task_id] = Lease(
                task_id=task_id,
                epoch=epoch,
                worker_id=worker_id,
                expires_at=now + duration,
            )

    def renew_worker(self, worker_id: int, now: float, duration: float) -> None:
        """Extend every lease held by ``worker_id`` (heard-from event)."""
        with self._lock:
            for task_id, lease in self._leases.items():
                if lease.worker_id == worker_id:
                    self._leases[task_id] = Lease(
                        task_id=task_id,
                        epoch=lease.epoch,
                        worker_id=worker_id,
                        expires_at=now + duration,
                    )

    def drop(self, task_id: TaskId, epoch: int) -> None:
        """Forget a lease (its dispatch finished or was cancelled)."""
        with self._lock:
            lease = self._leases.get(task_id)
            if lease is not None and lease.epoch == epoch:
                del self._leases[task_id]

    def expired(self, now: float) -> List[Lease]:
        """Pop and return every lease past its deadline."""
        out: List[Lease] = []
        with self._lock:
            for task_id in [
                t for t, l in self._leases.items() if l.expires_at <= now
            ]:
                out.append(self._leases.pop(task_id))
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._leases)
