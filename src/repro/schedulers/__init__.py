"""Task-to-worker scheduling policies.

EasyHPS's contribution is the *dynamic worker pool*: any idle worker takes
any computable sub-task, so no worker idles while work is ready. The
baselines are the static wavefront schedulers the paper compares against
(Section VI): block-cyclic wavefront (BCW) pins block columns to workers
cyclically, and column wavefront (CW) is BCW with one contiguous band per
worker. Both can leave idle workers next to computable tasks — the
"fatal situation" of Fig 17.
"""

from repro.schedulers.policy import (
    BlockCyclicWavefrontPolicy,
    ColumnWavefrontPolicy,
    DynamicPolicy,
    SchedulingPolicy,
    make_policy,
    POLICIES,
)

__all__ = [
    "SchedulingPolicy",
    "DynamicPolicy",
    "BlockCyclicWavefrontPolicy",
    "ColumnWavefrontPolicy",
    "make_policy",
    "POLICIES",
]
