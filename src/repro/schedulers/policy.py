"""Scheduling policy objects shared by the real runtime and the simulator.

A policy answers one question: *may idle worker ``w`` execute ready task
``t``, and which ready task should it take first?* The dynamic policy
(EasyHPS) says yes to everything; the static wavefront policies partition
tasks by block column up front, so a worker whose next owned block is
still blocked sits idle — measurably so, which is what the Fig 17
BCW/EasyHPS ratio quantifies.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.comm.messages import TaskId
from repro.utils.errors import ConfigError, SchedulerError


class SchedulingPolicy(ABC):
    """Assignment rule for one level (processor or thread) of the runtime."""

    name: str = "abstract"
    #: Whether the worker count may grow mid-run (elastic membership).
    #: Static wavefront policies fix column ownership at construction, so
    #: only the dynamic family accepts joiners.
    elastic: bool = False

    def __init__(self, n_workers: int) -> None:
        if n_workers <= 0:
            raise ConfigError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = n_workers

    @abstractmethod
    def owner(self, task_id: TaskId) -> Optional[int]:
        """Static owner of ``task_id``, or None if any worker may run it."""

    def eligible(self, worker_id: int, task_id: TaskId) -> bool:
        """Whether ``worker_id`` may execute ``task_id``."""
        if not 0 <= worker_id < self.n_workers:
            raise SchedulerError(f"worker {worker_id} out of range 0..{self.n_workers - 1}")
        o = self.owner(task_id)
        return o is None or o == worker_id

    def select(self, worker_id: int, ready: Sequence[TaskId]) -> Optional[TaskId]:
        """First task in ``ready`` (schedule order) this worker may take."""
        for task_id in ready:
            if self.eligible(worker_id, task_id):
                return task_id
        return None

    def select_index(self, worker_id: int, ready: Sequence[TaskId]) -> Optional[int]:
        """Index into ``ready`` of the task this worker should take next.

        The default scans from the end — LIFO over the computable stack,
        matching the real worker pool. Cost-aware policies override.
        """
        for idx in range(len(ready) - 1, -1, -1):
            if self.eligible(worker_id, ready[idx]):
                return idx
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.n_workers})"


class DynamicPolicy(SchedulingPolicy):
    """EasyHPS's dynamic worker pool: any worker takes any ready task."""

    name = "dynamic"
    elastic = True

    def owner(self, task_id: TaskId) -> Optional[int]:
        return None


class CostAwareDynamicPolicy(DynamicPolicy):
    """Largest-cost-first dynamic pool — an extension beyond the paper.

    Same eligibility as the dynamic pool, but an idle worker takes the
    *heaviest* ready task instead of the newest. Classic LPT-style
    heuristic: starting long tasks early shortens the end-game tail when
    block costs vary (SWGG, Nussinov). Only the simulated backend honors
    the ordering; the real pools pop LIFO (ordering needs costs the
    slave-side stack does not carry).
    """

    name = "dynamic-lcf"

    def __init__(self, n_workers: int, cost_fn) -> None:
        super().__init__(n_workers)
        if not callable(cost_fn):
            raise ConfigError("dynamic-lcf needs a callable cost_fn(task_id)")
        self.cost_fn = cost_fn

    def select_index(self, worker_id: int, ready: Sequence[TaskId]) -> Optional[int]:
        if not ready:
            return None
        return max(range(len(ready)), key=lambda i: self.cost_fn(ready[i]))


class AffinityDynamicPolicy(DynamicPolicy):
    """Locality-preferring dynamic pool — an extension beyond the paper.

    Same eligibility as the dynamic pool, but an idle worker first looks
    for a ready task one of whose precedence neighbors it executed
    itself: the big prefix/strip inputs of that task are then already in
    the worker's memory and need not be re-shipped (the simulator models
    the saving via :meth:`DPProblem.cached_input_bytes`). Falls back to
    LIFO when nothing local is ready, so it never idles while work exists.
    """

    name = "dynamic-affinity"

    def __init__(self, n_workers: int, neighbor_fn, history) -> None:
        super().__init__(n_workers)
        if not callable(neighbor_fn):
            raise ConfigError("dynamic-affinity needs a callable neighbor_fn(task_id)")
        self.neighbor_fn = neighbor_fn
        #: worker id -> set of task ids that worker completed (shared,
        #: mutated by the executing backend).
        self.history = history

    def select_index(self, worker_id: int, ready: Sequence[TaskId]) -> Optional[int]:
        done = self.history.get(worker_id, ())
        if done:
            for idx in range(len(ready) - 1, -1, -1):
                if any(nb in done for nb in self.neighbor_fn(ready[idx])):
                    return idx
        return super().select_index(worker_id, ready)


class BlockCyclicWavefrontPolicy(SchedulingPolicy):
    """Block-cyclic wavefront (BCW, Liu & Schmidt): block column ``J`` is
    owned by worker ``(J // block_cols) % n_workers``.

    ``block_cols`` groups adjacent block columns before the cyclic deal
    (the BCW ``block_col`` argument); 1 is the classic cyclic layout.
    """

    name = "bcw"

    def __init__(self, n_workers: int, block_cols: int = 1) -> None:
        super().__init__(n_workers)
        if block_cols <= 0:
            raise ConfigError(f"block_cols must be positive, got {block_cols}")
        self.block_cols = block_cols

    def owner(self, task_id: TaskId) -> Optional[int]:
        col = task_id[-1]
        return (col // self.block_cols) % self.n_workers


class ColumnWavefrontPolicy(SchedulingPolicy):
    """Column wavefront (CW): one contiguous band of block columns per worker.

    The paper notes CW is the special case of BCW with ``block_col =
    data_col / n_workers``; we implement it directly from the total number
    of block columns.
    """

    name = "cw"

    def __init__(self, n_workers: int, n_columns: int) -> None:
        super().__init__(n_workers)
        if n_columns <= 0:
            raise ConfigError(f"n_columns must be positive, got {n_columns}")
        self.n_columns = n_columns
        self._band = math.ceil(n_columns / n_workers)

    def owner(self, task_id: TaskId) -> Optional[int]:
        col = task_id[-1]
        if col >= self.n_columns:
            raise SchedulerError(f"column {col} outside declared range {self.n_columns}")
        return min(col // self._band, self.n_workers - 1)


POLICIES = ("dynamic", "dynamic-lcf", "dynamic-affinity", "bcw", "cw")


def make_policy(
    name: str,
    n_workers: int,
    n_columns: int,
    block_cols: int = 1,
    cost_fn=None,
) -> SchedulingPolicy:
    """Instantiate a policy by name (``n_columns`` feeds CW, ``cost_fn``
    feeds dynamic-lcf; without a cost function lcf degrades to dynamic)."""
    if name == "dynamic":
        return DynamicPolicy(n_workers)
    if name == "dynamic-lcf":
        if cost_fn is None:
            return DynamicPolicy(n_workers)
        return CostAwareDynamicPolicy(n_workers, cost_fn)
    if name == "dynamic-affinity":
        # Needs execution history the factory cannot supply; backends that
        # track it construct AffinityDynamicPolicy directly, everything
        # else degrades to the plain dynamic pool.
        return DynamicPolicy(n_workers)
    if name == "bcw":
        return BlockCyclicWavefrontPolicy(n_workers, block_cols=block_cols)
    if name == "cw":
        return ColumnWavefrontPolicy(n_workers, n_columns)
    raise ConfigError(f"unknown scheduler {name!r}; choose from {POLICIES}")
