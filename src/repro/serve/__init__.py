"""``repro.serve`` — the multi-tenant DP scheduler daemon.

A long-lived service over the EasyHPS runtime: one shared elastic
worker fleet (:mod:`repro.serve.fleet`), a bounded admission queue with
pluggable ordering policies (:mod:`repro.serve.admission`,
:mod:`repro.serve.policy`), a write-ahead submission log for ``kill
-9``-safe resume (:mod:`repro.serve.wal`), per-job fault isolation and
deadlines (:mod:`repro.serve.daemon`), and a unix-socket control plane
(:mod:`repro.serve.ipc`). See ``docs/serving.md``.
"""

from repro.serve.admission import (
    SHED_DRAINING,
    SHED_INVALID,
    SHED_QUEUE_FULL,
    SHED_RESOURCE,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.daemon import ServeDaemon, build_problem
from repro.serve.pressure import PressureProbe, ResourceWatermarks
from repro.serve.fleet import WorkerFleet
from repro.serve.job import JOB_STATES, TERMINAL_STATES, JobRecord, JobSpec
from repro.serve.policy import (
    ORDERING_POLICIES,
    FairSharePolicy,
    FIFOPolicy,
    HRRNPolicy,
    LotteryPolicy,
    OrderingPolicy,
    SJFPolicy,
    make_ordering_policy,
)
from repro.serve.wal import ServeEntry, ServeJournal, ServeScan, scan_serve_journal

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "SHED_DRAINING",
    "SHED_INVALID",
    "SHED_QUEUE_FULL",
    "SHED_RESOURCE",
    "PressureProbe",
    "ResourceWatermarks",
    "ServeDaemon",
    "build_problem",
    "WorkerFleet",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobSpec",
    "ORDERING_POLICIES",
    "OrderingPolicy",
    "FIFOPolicy",
    "SJFPolicy",
    "HRRNPolicy",
    "FairSharePolicy",
    "LotteryPolicy",
    "make_ordering_policy",
    "ServeEntry",
    "ServeJournal",
    "ServeScan",
    "scan_serve_journal",
]
