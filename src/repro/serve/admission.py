"""Admission control: the bounded submission queue and load shedding.

Every submission gets a structured :class:`AdmissionDecision` — accepted
with a job id, or shed with a machine-readable reason — and gets it
*immediately*: the queue is bounded, a full queue or a draining daemon
rejects instead of blocking, so a client can never hang on submit. Shed
counts are tracked per tenant so overload behaviour shows up in
``repro stats`` rather than in lost requests.

The controller owns the queue mutations under one lock; the daemon's
scheduler thread waits on the controller's condition for new work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.check.lock_lint import make_condition
from repro.serve.job import JobRecord
from repro.serve.policy import OrderingPolicy
from repro.utils.errors import ConfigError

#: Machine-readable rejection reasons (``AdmissionDecision.reason``
#: starts with one of these).
SHED_QUEUE_FULL = "queue-full"
SHED_DRAINING = "draining"
SHED_INVALID = "invalid-spec"
#: Host resource watermark breached (disk/memory/fd — see
#: :mod:`repro.serve.pressure`; also used by the daemon for WAL-write
#: failures as ``resource-pressure:wal-write``).
SHED_RESOURCE = "resource-pressure"


@dataclass(frozen=True)
class AdmissionDecision:
    """The immediate, structured answer to one submission."""

    accepted: bool
    job_id: Optional[str]
    #: ``accepted`` | ``queue-full: ...`` | ``draining: ...`` |
    #: ``invalid-spec: ...``
    reason: str
    #: Queue depth observed at decision time (after enqueue if accepted).
    queue_depth: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "accepted": self.accepted,
            "job_id": self.job_id,
            "reason": self.reason,
            "queue_depth": self.queue_depth,
        }


class AdmissionController:
    """Bounded FIFO queue with backpressure and per-tenant shed counters."""

    def __init__(
        self,
        capacity: int,
        *,
        pressure_probe: Optional[Callable[[], Optional[str]]] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._cond = make_condition("serve.admission")
        self._queue: List[JobRecord] = []
        self._draining = False
        self.shed_by_tenant: Dict[str, int] = {}
        self.admitted = 0
        #: Optional host watermark check (:meth:`repro.serve.pressure
        #: .PressureProbe.check` or any nullary returning a shed reason
        #: or None). Consulted on every admit, never on restore/requeue.
        self.pressure_probe = pressure_probe
        self.resource_sheds = 0

    # -- submission side -------------------------------------------------

    def admit(self, record: JobRecord) -> AdmissionDecision:
        """Enqueue ``record`` or shed it, never blocking the caller."""
        with self._cond:
            if self._draining:
                self._shed(record)
                return AdmissionDecision(
                    False, None,
                    f"{SHED_DRAINING}: daemon is draining, not accepting jobs",
                    len(self._queue),
                )
            if self.pressure_probe is not None:
                pressure = self.pressure_probe()
                if pressure is not None:
                    self._shed(record)
                    self.resource_sheds += 1
                    return AdmissionDecision(
                        False, None, pressure, len(self._queue)
                    )
            if len(self._queue) >= self.capacity:
                self._shed(record)
                return AdmissionDecision(
                    False, None,
                    f"{SHED_QUEUE_FULL}: depth {len(self._queue)} >= cap "
                    f"{self.capacity}; retry later",
                    len(self._queue),
                )
            self._queue.append(record)
            self.admitted += 1
            self._cond.notify_all()
            return AdmissionDecision(True, record.job_id, "accepted", len(self._queue))

    def _shed(self, record: JobRecord) -> None:
        tenant = record.spec.tenant
        self.shed_by_tenant[tenant] = self.shed_by_tenant.get(tenant, 0) + 1

    # -- scheduler side --------------------------------------------------

    def pop_next(
        self,
        policy: OrderingPolicy,
        now: float,
        *,
        launchable: Optional[Callable[[JobRecord], bool]] = None,
    ) -> Optional[JobRecord]:
        """Remove and return the job ``policy`` picks, or None if empty.

        ``launchable`` filters the candidate set (e.g. "fits the idle
        fleet right now") without consuming queue order for jobs that
        cannot start yet.
        """
        with self._cond:
            if launchable is None:
                candidates = list(self._queue)
            else:
                candidates = [r for r in self._queue if launchable(r)]
            if not candidates:
                return None
            picked = candidates[policy.select(candidates, now)]
            self._queue.remove(picked)
            return picked

    def requeue(self, record: JobRecord) -> None:
        """Put a popped-but-unlaunched job back at the queue head.

        Covers the pop/acquire race (the fleet went busy between the
        policy's pick and the worker reservation); bypasses the capacity
        check because the job was already admitted once.
        """
        with self._cond:
            self._queue.insert(0, record)
            self._cond.notify_all()

    def restore(self, record: JobRecord) -> None:
        """Re-admit a WAL-recovered job, ignoring capacity.

        ``--resume`` must never shed work the dead daemon already
        acknowledged, even if the recovered backlog exceeds the bound.
        """
        with self._cond:
            self._queue.append(record)
            self.admitted += 1
            self._cond.notify_all()

    def wait_for_work(self, timeout: float) -> bool:
        """Block until the queue is non-empty, draining, or ``timeout``."""
        with self._cond:
            if self._queue or self._draining:
                return True
            return self._cond.wait(timeout)

    def cancel(self, job_id: str) -> Optional[JobRecord]:
        """Remove a still-queued job; None if it is not in the queue."""
        with self._cond:
            for record in self._queue:
                if record.job_id == job_id:
                    self._queue.remove(record)
                    return record
            return None

    def drain(self) -> Tuple[JobRecord, ...]:
        """Stop admitting; return (and clear) everything still queued."""
        with self._cond:
            self._draining = True
            leftover = tuple(self._queue)
            self._queue.clear()
            self._cond.notify_all()
            return leftover

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def snapshot(self) -> Tuple[JobRecord, ...]:
        with self._cond:
            return tuple(self._queue)
