"""The ``repro serve`` daemon: many DP jobs, one shared worker fleet.

One long-lived :class:`ServeDaemon` owns a :class:`~repro.serve.fleet
.WorkerFleet` and runs every admitted job on it, concurrently. The
design is robustness-first:

- **Each job is a fault domain.** Every job gets its own master, its
  own channels, its own stop event, and its own retry budgets. A
  :class:`~repro.utils.errors.FaultToleranceExhausted` abort (stamped
  with the job id — see :meth:`MasterPart.request_abort` and
  ``_abort``) is recorded on that job's record and nothing else; fleet
  workers contain any escaping exception and return to the pool.
- **Admission never hangs.** The queue is bounded; overload and drain
  shed with a structured :class:`~repro.serve.admission
  .AdmissionDecision` immediately.
- **Every accepted job survives the daemon.** Submissions are journaled
  write-ahead through :class:`~repro.serve.wal.ServeJournal`; started
  jobs additionally journal their commits through the run-level
  :mod:`repro.durable` machinery. ``--resume`` after a ``kill -9``
  replays the submission log, finishes history, re-queues pending work,
  and resumes mid-run jobs from their per-job commit journals.
- **Deadlines cancel cleanly.** A watchdog thread turns an exceeded
  per-job deadline (or the daemon-wide job timeout) into
  ``master.request_abort`` — a clean, attributed abort, never a hang.
- **Drain is graceful.** SIGTERM (wired in the CLI) stops admission,
  cancels queued jobs with a recorded reason, lets running jobs finish,
  then stops the fleet and closes the log.

Per-tenant wait/run/slowdown histograms and job-outcome counters accrue
in a :class:`~repro.obs.metrics.MetricsRegistry` (``repro jobs
--stats``).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.check.lock_lint import make_lock
from repro.obs.clock import Clock, ensure_clock
from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import (
    SHED_INVALID,
    SHED_RESOURCE,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.fleet import WorkerFleet
from repro.serve.job import JobRecord, JobSpec, next_job_id, prime_job_counter
from repro.serve.policy import OrderingPolicy, make_ordering_policy
from repro.serve.pressure import PressureProbe, ResourceWatermarks
from repro.serve.wal import ServeEntry, ServeJournal, scan_serve_journal
from repro.utils.errors import (
    ConfigError,
    FaultToleranceExhausted,
    JournalError,
    JournalIOError,
    ResourceExhausted,
    SchedulerError,
)


def build_problem(spec: JobSpec) -> Any:
    """Rebuild the job's problem instance from its spec coordinates.

    Deterministic by construction (seeded factories), which is what lets
    the WAL store only ``(algo, size, seed)`` instead of pickled state.
    """
    from repro.cli import ALGORITHMS, _register_algorithms

    _register_algorithms()
    try:
        factory = ALGORITHMS[spec.algo]
    except KeyError:
        raise ConfigError(
            f"unknown algorithm {spec.algo!r}; choose from "
            f"{', '.join(sorted(ALGORITHMS))}"
        ) from None
    return factory(spec.size, spec.seed)


@dataclass
class _JobContext:
    """Everything the runner/watchdog/growth paths need for one live job."""

    record: JobRecord
    problem: Any
    partition: Any
    thread_size: Tuple[int, int]
    config: Any
    stop: threading.Event
    master: Any
    worker_ids: Tuple[int, ...]
    runner: Optional[threading.Thread] = None
    attached: List[int] = field(default_factory=list)


class ServeDaemon:
    """A multi-tenant DP job scheduler over one shared worker fleet."""

    def __init__(
        self,
        *,
        workers: int = 3,
        queue_cap: int = 16,
        policy: str = "fifo",
        policy_seed: int = 0,
        wal_path: Optional[str] = None,
        job_journal_dir: Optional[str] = None,
        resume: bool = False,
        fsync: bool = False,
        clock: Optional[Clock] = None,
        keep_states: bool = False,
        grow_running: bool = False,
        threads_per_node: int = 2,
        task_timeout: float = 10.0,
        job_timeout: Optional[float] = None,
        poll_interval: float = 0.02,
        job_prefix: str = "job",
        watermarks: Optional[ResourceWatermarks] = None,
        pressure_interval: float = 1.0,
        wal_compact_interval: int = 64,
        wal_keep_history: int = 64,
        io_fault_plan: Any = None,
    ) -> None:
        self.clock = ensure_clock(clock)
        self.fleet = WorkerFleet(workers)
        self.watermarks = watermarks
        self.pressure: Optional[PressureProbe] = None
        if watermarks is not None and watermarks.enabled:
            self.pressure = PressureProbe(
                watermarks, interval=pressure_interval, clock=self.clock
            )
        self.admission = AdmissionController(
            queue_cap,
            pressure_probe=self.pressure.check if self.pressure else None,
        )
        self.policy: OrderingPolicy = make_ordering_policy(policy, seed=policy_seed)
        self.metrics = MetricsRegistry()
        self.wal_path = wal_path
        self.job_journal_dir = job_journal_dir
        self.resume_requested = resume
        self.fsync = fsync
        self.keep_states = keep_states
        self.grow_running = grow_running
        self.threads_per_node = threads_per_node
        self.task_timeout = task_timeout
        self.job_timeout = job_timeout
        self.poll_interval = poll_interval
        self.job_prefix = job_prefix
        #: Compact the submission log every N finishes (0 disables).
        self.wal_compact_interval = wal_compact_interval
        self.wal_keep_history = wal_keep_history
        self.io_fault_plan = io_fault_plan

        self._wal: Optional[ServeJournal] = None
        self._finishes_since_compact = 0
        self._lock = make_lock("serve.daemon")
        self._records: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        self._contexts: Dict[str, _JobContext] = {}
        self._recovered_runs: Dict[str, str] = {}
        self._cost_cache: Dict[Tuple[str, int, int], float] = {}
        self._stop = threading.Event()
        self._killed = False
        self._threads: List[threading.Thread] = []
        self.resumed_jobs = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Open (or replay) the submission log, start fleet and loops."""
        if self.wal_path is not None:
            if self.resume_requested and os.path.exists(self.wal_path):
                self._replay_wal()
            else:
                self._wal = ServeJournal.create(
                    self.wal_path, fsync=self.fsync,
                    io_policy=self._wal_io_policy(),
                )
        if self.job_journal_dir is not None:
            os.makedirs(self.job_journal_dir, exist_ok=True)
        self.fleet.start()
        for name, target in (
            ("serve-sched", self._scheduler_loop),
            ("serve-watchdog", self._watchdog_loop),
        ):
            t = threading.Thread(target=target, daemon=True, name=name)
            t.start()
            self._threads.append(t)

    def _replay_wal(self) -> None:
        """Rebuild the job table from the submission log (``--resume``)."""
        assert self.wal_path is not None
        scan = scan_serve_journal(self.wal_path)
        prime_job_counter(scan.max_job_number)
        self._wal = ServeJournal.open_resume(
            scan, fsync=self.fsync, io_policy=self._wal_io_policy()
        )
        for job_id in scan.order:
            entry = scan.entries[job_id]
            record = JobRecord(job_id, entry.spec, submitted_at=self.clock.now())
            if entry.finished:
                # History: carry the terminal outcome forward verbatim.
                record.status = entry.status
                record.detail = entry.detail
                record.reason = entry.reason
            else:
                record.est_cost = self._estimate_cost(entry.spec)
                record.resumed = True
                self.resumed_jobs += 1
                if entry.run_journal and os.path.exists(entry.run_journal):
                    # Started before the crash and its commit journal
                    # survived: resume mid-run instead of rerunning.
                    self._recovered_runs[job_id] = entry.run_journal
                self.admission.restore(record)
            with self._lock:
                self._records[job_id] = record
                self._order.append(job_id)

    # -- submission ------------------------------------------------------

    def submit(self, spec: JobSpec) -> AdmissionDecision:
        """Admit or shed one job; always returns immediately."""
        try:
            cost = self._estimate_cost(spec)
        except ConfigError as exc:
            self._count_shed(spec.tenant)
            return AdmissionDecision(
                False, None, f"{SHED_INVALID}: {exc}", self.admission.depth
            )
        record = JobRecord(
            next_job_id(self.job_prefix), spec,
            submitted_at=self.clock.now(), est_cost=cost,
        )
        decision = self.admission.admit(record)
        if not decision.accepted:
            self._count_shed(spec.tenant)
            if decision.reason.startswith(SHED_RESOURCE):
                self.metrics.counter(
                    "serve.resource_sheds", tenant=spec.tenant
                ).inc()
            return decision
        with self._lock:
            self._records[record.job_id] = record
            self._order.append(record.job_id)
        # Write-ahead of the ack: the WAL record lands before the caller
        # learns the job was accepted, so an acknowledged job can never
        # vanish in a daemon crash.
        if self._wal is not None:
            try:
                self._wal.submit(record.job_id, spec)
            except JournalIOError as exc:
                # Cannot make the acceptance durable — revoke it and shed
                # with a resource reason instead of acknowledging a job a
                # crash would silently lose.
                reason = f"{SHED_RESOURCE}:wal-write"
                self._count_shed(spec.tenant)
                self.metrics.counter(
                    "serve.resource_sheds", tenant=spec.tenant
                ).inc()
                if self.admission.cancel(record.job_id) is not None:
                    self._finish(
                        record, "cancelled",
                        f"revoked: submission WAL write failed: {exc}",
                        reason=reason,
                    )
                else:
                    # The scheduler already popped it; abort it cleanly.
                    self.cancel(
                        record.job_id, f"submission WAL write failed: {exc}"
                    )
                return AdmissionDecision(
                    False, None, f"{reason}: {exc}", self.admission.depth
                )
        self.metrics.counter("serve.jobs_submitted", tenant=spec.tenant).inc()
        self.metrics.gauge("serve.queue_depth").set(self.admission.depth)
        return decision

    def submit_dict(self, raw: Dict[str, Any]) -> AdmissionDecision:
        """Submit from an untrusted wire dict (IPC path); bad specs shed
        with a structured ``invalid-spec`` reason instead of raising."""
        try:
            spec = JobSpec.from_dict(raw)
        except (ConfigError, TypeError) as exc:
            return AdmissionDecision(
                False, None, f"{SHED_INVALID}: {exc}", self.admission.depth
            )
        return self.submit(spec)

    def _estimate_cost(self, spec: JobSpec) -> float:
        key = (spec.algo, spec.size, spec.seed)
        cached = self._cost_cache.get(key)
        if cached is not None:
            return cached
        problem = build_problem(spec)
        proc_size, _ = self._base_config(spec).partitions_for(problem)
        cost = float(problem.total_flops(problem.build_partition(proc_size)))
        self._cost_cache[key] = cost
        return cost

    def _count_shed(self, tenant: str) -> None:
        self.metrics.counter("serve.jobs_shed", tenant=tenant).inc()

    # -- cancellation ----------------------------------------------------

    def cancel(self, job_id: str, reason: str = "cancelled by request") -> str:
        """Cancel a job; returns what happened (``cancelled`` |
        ``aborting`` | ``finished`` | ``unknown``)."""
        queued = self.admission.cancel(job_id)
        if queued is not None:
            self._finish(queued, "cancelled", f"cancelled before start: {reason}")
            return "cancelled"
        with self._lock:
            ctx = self._contexts.get(job_id)
            record = self._records.get(job_id)
        if ctx is not None and not ctx.record.terminal:
            if ctx.master.request_abort(f"cancelled: {reason}"):
                return "aborting"
        if record is not None:
            return "finished" if record.terminal else "aborting"
        return "unknown"

    # -- scheduling ------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            has_work = self.admission.wait_for_work(self.poll_interval)
            if self._stop.is_set():
                return
            if not has_work:
                if self.grow_running:
                    ids = self.fleet.acquire(1, timeout=0.0)
                    if ids is not None:
                        self._try_grow(ids)
                continue
            ids = self.fleet.acquire(1, timeout=self.poll_interval)
            if ids is None:
                continue
            record = self.admission.pop_next(self.policy, self.clock.now())
            if record is None:
                if self.grow_running:
                    self._try_grow(ids)
                else:
                    self.fleet.unreserve(ids)
                continue
            # Top up toward the job's requested width with whatever else
            # is idle right now (degrade, don't block).
            extra = record.spec.workers_wanted - len(ids)
            if extra > 0:
                more = self.fleet.acquire(extra, timeout=0.0)
                if more is not None:
                    ids = ids + more
            try:
                self._launch(record, ids)
            except BaseException as exc:  # noqa: B036 — job fault domain
                self.fleet.unreserve(ids)
                self._finish(record, "error", f"launch failed: {exc!r}")

    def _base_config(self, spec: JobSpec, n_workers: int = 1) -> Any:
        from repro.runtime.config import RunConfig

        return RunConfig(
            backend="threads",
            nodes=n_workers + 1,
            threads_per_node=self.threads_per_node,
            scheduler=spec.scheduler,
            task_timeout=self.task_timeout,
            subtask_timeout=self.task_timeout,
            max_retries=spec.max_retries,
            poll_interval=self.poll_interval,
            integrity=spec.integrity,
            verify=False,
        )

    def _job_config(self, record: JobRecord, n_workers: int) -> Any:
        from dataclasses import replace

        from repro.chaos.channel import ChaosChannel  # noqa: F401 — wired below
        from repro.cluster.faults import FaultPlan, MessageFaultPlan, WorkerFaultPlan

        spec = record.spec
        config = self._base_config(spec, n_workers)
        chaos = dict(spec.chaos)
        cseed = int(chaos.get("seed", spec.seed))
        updates: Dict[str, Any] = {"run_id": record.job_id}
        if self.job_journal_dir is not None:
            updates["journal_path"] = os.path.join(
                self.job_journal_dir, f"{record.job_id}.walj"
            )
            updates["journal_fsync"] = self.fsync
        if chaos.get("task_fault_p", 0.0) > 0:
            updates["fault_plan"] = FaultPlan.random(
                chaos["task_fault_p"], seed=cseed
            )
        if chaos.get("message_p", 0.0) > 0:
            updates["message_fault_plan"] = MessageFaultPlan.random(
                chaos["message_p"], seed=cseed
            )
        p_die = chaos.get("worker_p_die", 0.0)
        p_slow = chaos.get("worker_p_slow", 0.0)
        p_lie = chaos.get("worker_p_lie", 0.0)
        if p_die > 0 or p_slow > 0 or p_lie > 0:
            updates["worker_fault_plan"] = WorkerFaultPlan.random(
                p_die=p_die, p_slow=p_slow, p_lie=p_lie, seed=cseed
            )
        return replace(config, **updates)

    def _launch(self, record: JobRecord, worker_ids: Tuple[int, ...]) -> None:
        """Wire one job's master/slaves over the acquired fleet workers."""
        from repro.backends.threads import open_journal
        from repro.chaos.channel import ChaosChannel
        from repro.comm.transport import channel_pair
        from repro.durable.recovery import recover
        from repro.runtime.master import MasterPart
        from repro.schedulers.policy import make_policy

        spec = record.spec
        rec = None
        rec_path = self._recovered_runs.pop(record.job_id, None)
        if rec_path is not None:
            try:
                rec = recover(rec_path)
            except JournalError:
                rec = None  # torn beyond use: rerun from scratch
        config = self._job_config(record, len(worker_ids))
        problem = rec.problem if rec is not None else build_problem(spec)
        proc_size, thread_size = config.partitions_for(problem)
        partition = problem.build_partition(proc_size)
        policy = make_policy(config.scheduler, len(worker_ids),
                             partition.grid.n_block_cols)

        stop = threading.Event()
        master_channels = []
        slaves = []
        for k, _worker_id in enumerate(worker_ids):
            master_end, slave_end = channel_pair()
            if config.message_fault_plan:
                master_end = ChaosChannel(
                    master_end, config.message_fault_plan, endpoint_index=k
                )
            master_channels.append(master_end)
            slaves.append(self._make_slave(
                k, slave_end, problem, partition, thread_size, config, stop
            ))
        journal = open_journal(config, problem, rec)
        master = MasterPart(
            problem, partition, master_channels, policy,
            task_timeout=config.task_timeout,
            max_retries=config.max_retries,
            poll_interval=config.poll_interval,
            retry_backoff=config.retry_backoff,
            retry_backoff_max=config.retry_backoff_max,
            blacklist_threshold=config.blacklist_threshold,
            stall_timeout=config.effective_stall_timeout,
            verify=config.verify,
            journal=journal,
            completed=rec.committed if rec is not None else None,
            initial_state=rec.state if rec is not None else None,
            attempts=rec.attempts if rec is not None else None,
            heartbeat_interval=config.heartbeat_interval,
            lease_factor=config.lease_factor,
            integrity=config.integrity,
            audit_fraction=config.audit_fraction,
            vote_k=config.vote_k,
            quarantine_threshold=config.quarantine_threshold,
            run_digest=rec.run_digest if rec is not None else None,
            commit_digests=rec.scan.commit_digests if rec is not None else None,
            job_id=record.job_id,
        )

        now = self.clock.now()
        record.status = "running"
        record.started_at = now
        record.workers = worker_ids
        if rec is not None:
            record.resumed = True
        ctx = _JobContext(
            record, problem, partition, thread_size, config, stop, master, worker_ids
        )
        with self._lock:
            self._contexts[record.job_id] = ctx
        self.policy.note_started(record, now)
        if self._wal is not None:
            self._wal.start(record.job_id, config.journal_path)
        self.metrics.histogram(
            "serve.wait_seconds", tenant=spec.tenant
        ).observe(record.wait_seconds(now))

        for k, worker_id in enumerate(worker_ids):
            self.fleet.assign(
                worker_id, slaves[k].run, label=f"{record.job_id}/slave{k}"
            )
        runner = threading.Thread(
            target=self._run_job, args=(ctx,), daemon=True,
            name=f"serve-{record.job_id}",
        )
        ctx.runner = runner
        runner.start()

    def _make_slave(
        self,
        slave_id: int,
        channel: Any,
        problem: Any,
        partition: Any,
        thread_size: Tuple[int, int],
        config: Any,
        stop: threading.Event,
    ) -> Any:
        from repro.runtime.slave import SlavePart

        return SlavePart(
            slave_id=slave_id,
            channel=channel,
            problem=problem,
            partition=partition,
            thread_partition=thread_size,
            n_threads=config.threads_per_node,
            thread_scheduler=config.thread_scheduler,
            subtask_timeout=config.subtask_timeout,
            max_retries=config.max_retries,
            poll_interval=config.poll_interval,
            fault_plan=config.fault_plan,
            thread_fault_plan=config.thread_fault_plan,
            worker_fault_plan=config.worker_fault_plan,
            hang_duration=config.hang_duration,
            stop_event=stop,
            verify=config.verify,
            heartbeat_interval=config.heartbeat_interval,
            integrity=config.integrity,
        )

    def _run_job(self, ctx: _JobContext) -> None:
        """Per-job runner thread: the job's whole fault domain ends here."""
        record = ctx.record
        try:
            state = ctx.master.run()
            record.run_digest = ctx.master.stats.run_digest
            if self.keep_states:
                record.state = state
            detail = (
                f"digest {record.run_digest}" if record.run_digest else "completed"
            )
            self._finish(record, "done", detail)
        except ResourceExhausted as exc:
            # Resource exhaustion inside the job's fault domain: clean,
            # attributed abort with the machine-readable reason surfaced
            # through the job table, the WAL, and the IPC snapshot.
            self.metrics.counter(
                "serve.resource_aborts", tenant=record.spec.tenant
            ).inc()
            self._finish(record, "aborted", str(exc), reason=exc.reason)
        except FaultToleranceExhausted as exc:
            self._finish(
                record, "aborted", str(exc), reason="fault-tolerance-exhausted"
            )
        except BaseException as exc:  # noqa: B036 — job fault domain
            self._finish(record, "error", f"{type(exc).__name__}: {exc}")
        finally:
            ctx.stop.set()
            with self._lock:
                self._contexts.pop(record.job_id, None)

    def _finish(
        self, record: JobRecord, status: str, detail: str, reason: str = ""
    ) -> None:
        now = self.clock.now()
        record.status = status
        record.detail = detail
        record.reason = reason
        record.finished_at = now
        self.policy.note_finished(record, now)
        tenant = record.spec.tenant
        self.metrics.counter(f"serve.jobs_{status}", tenant=tenant).inc()
        run_s = record.run_seconds(now)
        if record.started_at is not None:
            self.metrics.histogram("serve.run_seconds", tenant=tenant).observe(run_s)
            denom = max(run_s, 1e-6)
            self.metrics.histogram("serve.slowdown", tenant=tenant).observe(
                (record.wait_seconds(now) + run_s) / denom
            )
        if self._wal is not None and not self._killed:
            try:
                self._wal.finish(record.job_id, status, detail[:500], reason)
            except JournalError:
                pass  # closed during kill/drain race: resume reruns it
            else:
                self._maybe_compact()

    # -- WAL compaction --------------------------------------------------

    def _wal_io_policy(self) -> Any:
        if not self.io_fault_plan:
            return None
        from repro.cluster.faults import IoPolicy

        return IoPolicy(self.io_fault_plan, "serve-wal")

    def _wal_entries(self) -> List[ServeEntry]:
        """Current job history as compaction input (called by
        :meth:`ServeJournal.compact` *under the WAL lock*, so a finish
        racing the compaction is either in this snapshot or appends
        after the rewrite — never lost)."""
        with self._lock:
            records = [self._records[j] for j in self._order]
            journals = {
                j: c.config.journal_path for j, c in self._contexts.items()
            }
        entries = []
        for r in records:
            if r.terminal:
                status = r.status
            elif r.started_at is not None:
                status = "started"
            else:
                status = "submitted"
            entries.append(ServeEntry(
                r.job_id, r.spec, status=status, detail=r.detail[:500],
                run_journal=journals.get(r.job_id), reason=r.reason,
            ))
        return entries

    def _maybe_compact(self) -> None:
        """Every ``wal_compact_interval`` finishes, rewrite the WAL so a
        long-lived daemon's log stays bounded by live jobs + recent
        history instead of growing forever."""
        if self._wal is None or self.wal_compact_interval <= 0:
            return
        with self._lock:
            self._finishes_since_compact += 1
            if self._finishes_since_compact < self.wal_compact_interval:
                return
            self._finishes_since_compact = 0
        try:
            dropped = self._wal.compact(
                self._wal_entries, keep_history=self.wal_keep_history
            )
        except JournalError:
            # Compaction failure is never fatal: the append log is still
            # intact (tmp-file rewrite), we just stay un-compacted.
            self.metrics.counter("serve.wal_compact_failures").inc()
        else:
            self.metrics.counter("serve.wal_compactions").inc()
            self.metrics.gauge("serve.wal_compact_dropped").set(dropped)

    # -- elastic growth --------------------------------------------------

    def _try_grow(self, ids: Tuple[int, ...]) -> None:
        """Attach an idle worker to the running job with the fewest
        workers (exercises mid-run elastic membership continuously)."""
        from repro.comm.transport import channel_pair

        with self._lock:
            candidates = [
                c for c in self._contexts.values() if not c.record.terminal
            ]
        if not candidates:
            self.fleet.unreserve(ids)
            return
        ctx = min(candidates, key=lambda c: len(c.worker_ids) + len(c.attached))
        master_end, slave_end = channel_pair()
        try:
            new_id = ctx.master.attach_worker(master_end)
        except SchedulerError:
            # Static policy or the run just ended — both fine, put the
            # worker back.
            self.fleet.unreserve(ids)
            return
        slave = self._make_slave(
            new_id, slave_end, ctx.problem, ctx.partition,
            ctx.thread_size, ctx.config, ctx.stop,
        )
        ctx.attached.append(ids[0])
        self.fleet.assign(
            ids[0], slave.run, label=f"{ctx.record.job_id}/attach{new_id}"
        )
        if len(ids) > 1:
            self.fleet.unreserve(ids[1:])
        self.metrics.counter(
            "serve.workers_attached", tenant=ctx.record.spec.tenant
        ).inc()

    # -- watchdog --------------------------------------------------------

    def _watchdog_loop(self) -> None:
        while not self._stop.wait(self.poll_interval * 5):
            now = self.clock.now()
            with self._lock:
                contexts = list(self._contexts.values())
            for ctx in contexts:
                record = ctx.record
                if record.started_at is None or record.terminal:
                    continue
                elapsed = now - record.started_at
                deadline = record.spec.deadline
                if deadline is not None and elapsed > deadline:
                    ctx.master.request_abort(
                        f"deadline {deadline:.3f}s exceeded "
                        f"({elapsed:.3f}s elapsed)"
                    )
                elif self.job_timeout is not None and elapsed > self.job_timeout:
                    ctx.master.request_abort(
                        f"daemon job timeout {self.job_timeout:.3f}s exceeded"
                    )

    # -- introspection ---------------------------------------------------

    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [self._records[job_id].snapshot() for job_id in self._order]

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def tenant_stats(self) -> Dict[str, Any]:
        """Per-tenant counters and latency summaries + shed accounting."""
        snap = self.metrics.snapshot()
        snap["shed_by_tenant"] = dict(self.admission.shed_by_tenant)
        snap["queue_depth"] = self.admission.depth
        snap["resource_sheds"] = self.admission.resource_sheds
        if self.pressure is not None:
            snap["pressure_trips"] = self.pressure.trips
        snap["fleet_idle"] = self.fleet.idle_count
        snap["fleet_crashes"] = len(self.fleet.crash_log)
        return snap

    def wait_idle(self, timeout: float) -> bool:
        """Block until no job is queued or running (test/campaign sync)."""
        deadline = self.clock.now() + timeout
        while self.clock.now() < deadline:
            with self._lock:
                busy = any(
                    not self._records[j].terminal for j in self._order
                )
            if not busy and self.admission.depth == 0:
                return True
            if self._stop.wait(0.02):
                return False
        return False

    # -- teardown --------------------------------------------------------

    def drain(self, timeout: float = 60.0) -> bool:
        """Graceful SIGTERM path. Returns True on a clean, complete drain.

        Stops admission (new submissions shed with ``draining``), cancels
        still-queued jobs with a recorded reason, waits for running jobs
        to finish normally, then aborts stragglers, stops the fleet, and
        closes the submission log.
        """
        for record in self.admission.drain():
            self._finish(record, "cancelled", "cancelled: daemon drained before start")
        deadline = self.clock.now() + timeout
        clean = True
        pause = threading.Event()
        while self.clock.now() < deadline:
            with self._lock:
                if not any(
                    not c.record.terminal for c in self._contexts.values()
                ):
                    break
            pause.wait(0.05)
        with self._lock:
            stragglers = [c for c in self._contexts.values()
                          if not c.record.terminal]
        for ctx in stragglers:
            clean = False
            ctx.master.request_abort("daemon drain timeout")
        with self._lock:
            runners = [c.runner for c in self._contexts.values() if c.runner]
        for runner in runners:
            runner.join(timeout=10.0)
        self._stop.set()
        leaked = self.fleet.stop()
        if leaked:
            clean = False
        for t in self._threads:
            t.join(timeout=5.0)
        if self._wal is not None:
            self._wal.close()
        return clean

    def kill(self) -> None:
        """The chaos tier's in-process stand-in for ``kill -9``.

        No finish records are written past this point (the WAL handle is
        abandoned mid-stream, exactly the artifact a real SIGKILL
        leaves), running masters are torn down, and the fleet stops. A
        follow-up daemon with ``resume=True`` on the same WAL must
        recover every acknowledged job.
        """
        self._killed = True
        self._stop.set()
        if self._wal is not None:
            self._wal.abandon()
        self.admission.drain()
        with self._lock:
            contexts = list(self._contexts.values())
        for ctx in contexts:
            ctx.master.request_abort("daemon killed")
            ctx.stop.set()
        for ctx in contexts:
            if ctx.runner is not None:
                ctx.runner.join(timeout=10.0)
        self.fleet.stop()
        for t in self._threads:
            t.join(timeout=5.0)
