"""The shared elastic worker fleet behind the serve daemon.

A fixed pool of long-lived worker threads serves *all* tenants' jobs:
the daemon acquires ``k`` idle workers for a launch, hands each an
assignment (typically "run this :class:`~repro.runtime.slave.SlavePart`
to end-of-run"), and the workers return themselves to the idle pool
when the assignment finishes. Idle workers can also be attached to an
*already running* job through :meth:`MasterPart.attach_worker` — the
elastic-membership path from the standalone runtime, now exercised
continuously by a multi-job daemon.

Fault isolation is the fleet's one hard rule: an assignment is executed
under ``except BaseException``, so a poisoned job — a slave crash, a
corrupt message, an injected fault that escapes the runtime — kills at
most its own assignment. The worker logs the crash, returns to the idle
pool, and the next tenant's job gets a healthy worker.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.check.lock_lint import make_condition
from repro.utils.errors import ConfigError

#: An assignment: a no-argument callable run to completion on the worker
#: thread. Return value is ignored; exceptions are contained.
Assignment = Callable[[], None]


class _FleetWorker:
    """One long-lived worker thread and its hand-off slot."""

    def __init__(self, worker_id: int, fleet: "WorkerFleet") -> None:
        self.worker_id = worker_id
        self._fleet = fleet
        self._cond = make_condition("serve.fleet.worker")
        self._task: Optional[Assignment] = None
        self._label = ""
        self._stop = False
        self.assignments = 0
        self.crashes = 0
        self.thread = threading.Thread(
            target=self._loop, daemon=True, name=f"fleet-worker{worker_id}"
        )

    def assign(self, task: Assignment, label: str) -> None:
        with self._cond:
            if self._task is not None:
                raise ConfigError(
                    f"fleet worker {self.worker_id} already has an assignment "
                    f"({self._label!r})"
                )
            self._task = task
            self._label = label
            self._cond.notify_all()

    def stop(self) -> None:
        with self._cond:
            self._stop = True
            self._cond.notify_all()

    def _loop(self) -> None:
        while True:
            with self._cond:
                while self._task is None and not self._stop:
                    self._cond.wait(0.2)
                if self._task is None and self._stop:
                    return
                task, label = self._task, self._label
            try:
                assert task is not None
                task()
            except BaseException as exc:  # noqa: B036 — isolation boundary
                # The whole point of the fleet: a poisoned assignment is
                # recorded and contained, never allowed to take the
                # worker thread (and every later tenant's job) with it.
                self.crashes += 1
                self._fleet._note_crash(self.worker_id, label, exc)
            finally:
                self.assignments += 1
                with self._cond:
                    self._task = None
                    self._label = ""
                self._fleet._release(self.worker_id)


class WorkerFleet:
    """A bounded pool of reusable worker threads shared across jobs."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigError(f"fleet size must be >= 1, got {size}")
        self.size = size
        self._cond = make_condition("serve.fleet.idle")
        self._workers: List[_FleetWorker] = [_FleetWorker(i, self) for i in range(size)]
        self._idle: List[int] = list(range(size))
        self._busy_label: Dict[int, str] = {}
        self._stopped = False
        #: ``(worker_id, label, repr(exc))`` per contained crash.
        self.crash_log: List[Tuple[int, str, str]] = []

    def start(self) -> None:
        for worker in self._workers:
            worker.thread.start()

    # -- allocation ------------------------------------------------------

    def acquire(self, count: int, timeout: float = 0.0) -> Optional[Tuple[int, ...]]:
        """Reserve up to ``count`` idle workers (at least one).

        Returns their ids, or None when no worker frees up within
        ``timeout``. Deliberately *degrades* rather than blocks: a job
        asking for more workers than are idle gets what exists now, so
        one wide job cannot wedge the queue behind it.
        """
        if count < 1:
            raise ConfigError(f"count must be >= 1, got {count}")
        with self._cond:
            if not self._idle and timeout > 0:
                self._cond.wait(timeout)
            if not self._idle or self._stopped:
                return None
            take = min(count, len(self._idle))
            ids = tuple(self._idle[:take])
            del self._idle[:take]
            return ids

    def assign(self, worker_id: int, task: Assignment, label: str = "") -> None:
        """Hand an acquired worker its assignment."""
        self._busy_label[worker_id] = label
        self._workers[worker_id].assign(task, label)

    def unreserve(self, worker_ids: Tuple[int, ...]) -> None:
        """Return acquired-but-never-assigned workers to the idle pool."""
        with self._cond:
            for worker_id in worker_ids:
                if worker_id not in self._idle:
                    self._idle.append(worker_id)
            self._cond.notify_all()

    def _release(self, worker_id: int) -> None:
        with self._cond:
            self._busy_label.pop(worker_id, None)
            self._idle.append(worker_id)
            self._cond.notify_all()

    def _note_crash(self, worker_id: int, label: str, exc: BaseException) -> None:
        with self._cond:
            self.crash_log.append((worker_id, label, repr(exc)))

    # -- introspection ---------------------------------------------------

    @property
    def idle_count(self) -> int:
        with self._cond:
            return len(self._idle)

    @property
    def busy(self) -> Dict[int, str]:
        with self._cond:
            return dict(self._busy_label)

    def wait_idle(self, timeout: float) -> bool:
        """Block until every worker is idle (all assignments done)."""
        deadline_budget = timeout
        with self._cond:
            while len(self._idle) < self.size:
                if deadline_budget <= 0:
                    return False
                step = min(0.2, deadline_budget)
                self._cond.wait(step)
                deadline_budget -= step
            return True

    # -- teardown --------------------------------------------------------

    def stop(self, timeout: float = 10.0) -> int:
        """Stop all workers; returns how many threads failed to join.

        Assignments are not interrupted — the owner of each running job
        must release its slaves (stop event / end signal) first; this
        only tells idle loops to exit and joins the threads.
        """
        with self._cond:
            self._stopped = True
        for worker in self._workers:
            worker.stop()
        leaked = 0
        for worker in self._workers:
            if worker.thread.is_alive():
                worker.thread.join(timeout=timeout)
            if worker.thread.is_alive():
                leaked += 1
        return leaked
