"""Client/server IPC of the serve daemon (unix socket, JSON lines).

``repro serve`` starts a :class:`ServeServer` on a unix-domain socket;
``repro submit``/``repro jobs``/``repro cancel`` are thin clients that
write one JSON request line and read one JSON response line. The
protocol is deliberately minimal and schema-free on the wire — every
request is ``{"op": ..., ...}`` and every response ``{"ok": bool,
...}`` — because the structured contracts (admission decisions, job
snapshots) are defined by :mod:`repro.serve.admission` and
:mod:`repro.serve.job` and serialized verbatim.

Robustness notes: the server thread accepts with a timeout so daemon
shutdown never blocks on a quiet socket; a malformed request gets a
structured error response, never a dropped connection; client calls
carry a timeout so a dead daemon yields a clean
:class:`~repro.utils.errors.TransportError` instead of a hang.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from typing import Any, Dict, List, Optional

from repro.serve.daemon import ServeDaemon
from repro.utils.errors import TransportError

#: Cap on one request line (1 MiB) — longer is a protocol error.
_MAX_LINE = 1 << 20


class ServeServer:
    """JSON-lines request server bound to one daemon instance."""

    def __init__(self, daemon: ServeDaemon, socket_path: str) -> None:
        self.daemon = daemon
        self.socket_path = socket_path
        self._stop = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self.requests_served = 0

    def start(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(self.socket_path)
        sock.listen(16)
        sock.settimeout(0.2)
        self._sock = sock
        self._thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="serve-ipc"
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._sock is not None:
            self._sock.close()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                self._serve_one(conn)
            except OSError:
                pass  # client went away mid-exchange; its problem
            finally:
                conn.close()
            self.requests_served += 1

    def _serve_one(self, conn: socket.socket) -> None:
        conn.settimeout(2.0)
        raw = b""
        while b"\n" not in raw and len(raw) < _MAX_LINE:
            chunk = conn.recv(4096)
            if not chunk:
                break
            raw += chunk
        try:
            request = json.loads(raw.decode("utf-8"))
            response = self._dispatch(request)
        except Exception as exc:  # malformed request: structured error
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        conn.sendall(json.dumps(response).encode("utf-8") + b"\n")

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid()}
        if op == "submit":
            decision = self.daemon.submit_dict(request.get("spec") or {})
            return {"ok": True, "decision": decision.to_dict()}
        if op == "jobs":
            return {"ok": True, "jobs": self.daemon.jobs()}
        if op == "stats":
            return {"ok": True, "stats": self.daemon.tenant_stats()}
        if op == "cancel":
            outcome = self.daemon.cancel(str(request.get("job_id")))
            return {"ok": True, "outcome": outcome}
        return {"ok": False, "error": f"unknown op {op!r}"}


def request(socket_path: str, payload: Dict[str, Any], timeout: float = 5.0) -> Dict[str, Any]:
    """One request/response round trip; raises TransportError, never hangs."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(socket_path)
        sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        raw = b""
        while b"\n" not in raw and len(raw) < _MAX_LINE:
            chunk = sock.recv(4096)
            if not chunk:
                break
            raw += chunk
    except (OSError, socket.timeout) as exc:
        raise TransportError(
            f"serve daemon unreachable at {socket_path!r}: {exc}"
        ) from exc
    finally:
        sock.close()
    if not raw:
        raise TransportError(f"serve daemon at {socket_path!r} closed without reply")
    try:
        return dict(json.loads(raw.decode("utf-8")))
    except (ValueError, TypeError) as exc:
        raise TransportError(f"malformed reply from {socket_path!r}: {exc}") from exc


def submit_job(socket_path: str, spec: Dict[str, Any], timeout: float = 5.0) -> Dict[str, Any]:
    reply = request(socket_path, {"op": "submit", "spec": spec}, timeout)
    if not reply.get("ok"):
        raise TransportError(f"submit failed: {reply.get('error')}")
    return dict(reply["decision"])


def list_jobs(socket_path: str, timeout: float = 5.0) -> List[Dict[str, Any]]:
    reply = request(socket_path, {"op": "jobs"}, timeout)
    if not reply.get("ok"):
        raise TransportError(f"jobs failed: {reply.get('error')}")
    return list(reply["jobs"])


def daemon_stats(socket_path: str, timeout: float = 5.0) -> Dict[str, Any]:
    reply = request(socket_path, {"op": "stats"}, timeout)
    if not reply.get("ok"):
        raise TransportError(f"stats failed: {reply.get('error')}")
    return dict(reply["stats"])


def cancel_job(socket_path: str, job_id: str, timeout: float = 5.0) -> str:
    reply = request(socket_path, {"op": "cancel", "job_id": job_id}, timeout)
    if not reply.get("ok"):
        raise TransportError(f"cancel failed: {reply.get('error')}")
    return str(reply["outcome"])
