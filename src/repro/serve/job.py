"""Job model of the ``repro serve`` daemon.

A *job* is one DP run owned by a tenant: the :class:`JobSpec` names the
instance (algorithm, size, seed — problems are rebuilt deterministically
from these coordinates, so the submission WAL and the wire protocol only
ever carry plain JSON-safe dicts), the cluster shape it wants, a
deadline, and an optional seeded chaos profile (the fault-injection
hook the service chaos tier submits through, exactly like any other
tenant traffic). The :class:`JobRecord` is the daemon's mutable view:
admission/start/finish timestamps, the lifecycle state, and the
recorded outcome.

Lifecycle::

    queued -> running -> done      (finished; state committed)
                      -> aborted   (clean FaultToleranceExhausted,
                                    deadline cancel, or daemon kill)
                      -> error     (unexpected exception — isolated,
                                    recorded, never propagated)
           -> cancelled            (cancelled or drained before start)

Every terminal state carries a human-readable ``detail`` so ``repro
jobs`` and the chaos tier can attribute the outcome without scraping
logs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.utils.errors import ConfigError

#: Lifecycle states of a job record.
JOB_STATES: Tuple[str, ...] = (
    "queued", "running", "done", "aborted", "error", "cancelled",
)

#: States a job never leaves.
TERMINAL_STATES: Tuple[str, ...] = ("done", "aborted", "error", "cancelled")

#: Recognized keys of a spec's ``chaos`` profile (all floats; ``seed``
#: is truncated to int). Unknown keys are rejected at validation so a
#: typo cannot silently disable a campaign's sabotage tier.
CHAOS_KEYS: Tuple[str, ...] = (
    "seed", "message_p", "worker_p_die", "worker_p_slow", "worker_p_lie",
    "task_fault_p",
)

_job_counter = itertools.count(1)


def next_job_id(prefix: str = "job") -> str:
    """A fresh process-unique job id (``<prefix>-<n>``). The daemon
    re-primes the counter past any id recovered from the WAL."""
    return f"{prefix}-{next(_job_counter)}"


def prime_job_counter(floor: int) -> None:
    """Advance the id counter past ``floor`` (WAL resume: fresh ids must
    not collide with recovered ones)."""
    global _job_counter
    current = next(_job_counter)
    _job_counter = itertools.count(max(current, floor + 1))


@dataclass(frozen=True)
class JobSpec:
    """What one tenant asked the daemon to run (JSON-safe)."""

    tenant: str = "default"
    algo: str = "edit-distance"
    size: int = 48
    seed: int = 0
    #: Cluster shape the job wants: ``nodes - 1`` fleet workers. The
    #: daemon degrades to fewer when the fleet is smaller.
    nodes: int = 3
    scheduler: str = "dynamic"
    #: Seconds from *start* before the daemon cleanly cancels the run
    #: (a recorded abort, never a hang). None = no per-job deadline.
    deadline: Optional[float] = None
    max_retries: int = 8
    integrity: str = "digest"
    #: Seeded fault profile injected into this job only (the service
    #: chaos tier's sabotage hook; see :data:`CHAOS_KEYS`). Empty = no
    #: injected faults.
    chaos: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tenant or not isinstance(self.tenant, str):
            raise ConfigError(f"tenant must be a non-empty string, got {self.tenant!r}")
        if self.size < 2:
            raise ConfigError(f"size must be >= 2, got {self.size}")
        if self.nodes < 2:
            raise ConfigError(f"nodes must be >= 2 (master + worker), got {self.nodes}")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigError(f"deadline must be > 0, got {self.deadline}")
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        for key in self.chaos:
            if key not in CHAOS_KEYS:
                raise ConfigError(
                    f"unknown chaos knob {key!r}; known: {CHAOS_KEYS}"
                )

    @property
    def workers_wanted(self) -> int:
        return self.nodes - 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "algo": self.algo,
            "size": self.size,
            "seed": self.seed,
            "nodes": self.nodes,
            "scheduler": self.scheduler,
            "deadline": self.deadline,
            "max_retries": self.max_retries,
            "integrity": self.integrity,
            "chaos": dict(self.chaos),
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "JobSpec":
        known = {
            "tenant", "algo", "size", "seed", "nodes", "scheduler",
            "deadline", "max_retries", "integrity", "chaos",
        }
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ConfigError(f"unknown job spec fields: {unknown}")
        out: Dict[str, Any] = dict(raw)
        if "chaos" in out and out["chaos"] is None:
            out["chaos"] = {}
        return cls(**out)


@dataclass
class JobRecord:
    """The daemon's mutable view of one admitted job."""

    job_id: str
    spec: JobSpec
    status: str = "queued"
    #: Clock readings on the daemon's clock (monotonic seconds).
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Human-readable outcome (abort reason, cancel cause, digest, ...).
    detail: str = ""
    #: Machine-readable terminal attribution (e.g.
    #: ``resource-exhausted:disk:journal-write``); empty for ordinary
    #: completions.
    reason: str = ""
    #: Estimated work (flops of the process-level partition) — feeds the
    #: SJF/HRRN/lottery ordering policies. Stamped at admission.
    est_cost: float = 0.0
    #: Worker ids the fleet allocated (informational; live only).
    workers: Tuple[int, ...] = ()
    #: Final DP state (kept only when the daemon was built with
    #: ``keep_states=True`` — the chaos tier's oracle diff needs it).
    state: Optional[Dict[str, Any]] = None
    #: Rolling run digest of the finished run, when integrity was on.
    run_digest: Optional[str] = None
    #: The job resumed from a per-job journal after a daemon crash.
    resumed: bool = False

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def wait_seconds(self, now: float) -> float:
        """Queue wait so far (or total, once started)."""
        start = self.started_at if self.started_at is not None else now
        return max(0.0, start - self.submitted_at)

    def run_seconds(self, now: float) -> float:
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None else now
        return max(0.0, end - self.started_at)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view for ``repro jobs`` and the IPC server."""
        return {
            "job_id": self.job_id,
            "tenant": self.spec.tenant,
            "algo": self.spec.algo,
            "size": self.spec.size,
            "status": self.status,
            "detail": self.detail,
            "reason": self.reason,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "workers": list(self.workers),
            "resumed": self.resumed,
            "run_digest": self.run_digest,
        }
