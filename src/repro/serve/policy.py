"""Job-ordering policies of the serve daemon's submission queue.

These decide *which queued job starts next* when fleet workers free up —
one level above :mod:`repro.schedulers.policy`, which orders tasks
*inside* a run. The daemon calls :meth:`OrderingPolicy.select` with the
current queue snapshot each time it can launch a job, and feeds
start/finish events back so stateful policies (fair-share) can account
tenant service.

All policies are deterministic given the submission sequence (lottery
draws from its own seeded generator), so trace replays and the serve
chaos tier reproduce bit-identical schedules.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.serve.job import JobRecord
from repro.utils.errors import ConfigError

#: Assumed sustained compute rate used to turn an estimated flop count
#: into seconds for HRRN's response ratio. Only the *relative* scale
#: matters (it weighs wait time against job length), so a rough constant
#: is fine.
DEFAULT_COST_RATE = 5e7


class OrderingPolicy(ABC):
    """Order rule for the daemon's submission queue."""

    name: str = "abstract"

    @abstractmethod
    def select(self, queue: Sequence[JobRecord], now: float) -> int:
        """Index into ``queue`` of the job to start next.

        ``queue`` is non-empty and in submission (FIFO) order; ``now`` is
        the daemon clock. Must be side-effect free w.r.t. the records.
        """

    def note_started(self, record: JobRecord, now: float) -> None:
        """Hook: ``record`` left the queue and began running."""

    def note_finished(self, record: JobRecord, now: float) -> None:
        """Hook: ``record`` reached a terminal state."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FIFOPolicy(OrderingPolicy):
    """First come, first served — the baseline and the default."""

    name = "fifo"

    def select(self, queue: Sequence[JobRecord], now: float) -> int:
        return 0


class SJFPolicy(OrderingPolicy):
    """Shortest job first, by the admission-time cost estimate.

    The estimate is the flop count of the job's process-level partition
    (the same model the simulator charges), stamped on the record at
    admission. Ties fall back to FIFO so equal-cost jobs cannot starve
    each other.
    """

    name = "sjf"

    def select(self, queue: Sequence[JobRecord], now: float) -> int:
        best = 0
        for idx in range(1, len(queue)):
            if queue[idx].est_cost < queue[best].est_cost:
                best = idx
        return best


class HRRNPolicy(OrderingPolicy):
    """Highest response ratio next: ``(wait + est) / est``.

    Favors short jobs like SJF but ages long waiters, so no job starves
    under a stream of short arrivals.
    """

    name = "hrrn"

    def __init__(self, rate: float = DEFAULT_COST_RATE) -> None:
        if rate <= 0:
            raise ConfigError(f"rate must be > 0, got {rate}")
        self.rate = rate

    def _ratio(self, record: JobRecord, now: float) -> float:
        est = max(record.est_cost / self.rate, 1e-9)
        wait = max(0.0, now - record.submitted_at)
        return (wait + est) / est

    def select(self, queue: Sequence[JobRecord], now: float) -> int:
        best = 0
        best_ratio = self._ratio(queue[0], now)
        for idx in range(1, len(queue)):
            ratio = self._ratio(queue[idx], now)
            if ratio > best_ratio:
                best, best_ratio = idx, ratio
        return best


class FairSharePolicy(OrderingPolicy):
    """Per-tenant fair share by accumulated service time.

    Picks the oldest queued job of the tenant that has consumed the
    least run time so far (running jobs count their elapsed time, so a
    tenant cannot grab the whole fleet by submitting faster than its
    jobs finish). Fresh tenants start at zero and therefore go first.
    """

    name = "fair"

    def __init__(self) -> None:
        self._consumed: Dict[str, float] = {}
        self._running_since: Dict[str, Dict[str, float]] = {}

    def _service(self, tenant: str, now: float) -> float:
        live = sum(
            max(0.0, now - t0)
            for t0 in self._running_since.get(tenant, {}).values()
        )
        return self._consumed.get(tenant, 0.0) + live

    def select(self, queue: Sequence[JobRecord], now: float) -> int:
        best = 0
        best_service = self._service(queue[0].spec.tenant, now)
        for idx in range(1, len(queue)):
            service = self._service(queue[idx].spec.tenant, now)
            if service < best_service:
                best, best_service = idx, service
        return best

    def note_started(self, record: JobRecord, now: float) -> None:
        self._running_since.setdefault(record.spec.tenant, {})[record.job_id] = now

    def note_finished(self, record: JobRecord, now: float) -> None:
        tenant = record.spec.tenant
        t0 = self._running_since.get(tenant, {}).pop(record.job_id, None)
        if t0 is not None:
            self._consumed[tenant] = self._consumed.get(tenant, 0.0) + max(0.0, now - t0)


class LotteryPolicy(OrderingPolicy):
    """Seeded lottery scheduling: each tenant holds equal tickets.

    A draw first picks a tenant (uniform over tenants with queued work,
    so a flood of jobs from one tenant does not buy it more tickets),
    then takes that tenant's oldest job. Probabilistically fair and
    starvation-free, yet reproducible: the generator is seeded and
    consumed once per launch decision.
    """

    name = "lottery"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def select(self, queue: Sequence[JobRecord], now: float) -> int:
        tenants = sorted({record.spec.tenant for record in queue})
        winner = tenants[int(self._rng.integers(len(tenants)))]
        for idx, record in enumerate(queue):
            if record.spec.tenant == winner:
                return idx
        raise AssertionError("unreachable: winner drawn from queued tenants")


#: Names accepted by ``repro serve --policy``.
ORDERING_POLICIES: Tuple[str, ...] = ("fifo", "sjf", "hrrn", "fair", "lottery")


def make_ordering_policy(
    name: str, *, seed: int = 0, rate: float = DEFAULT_COST_RATE
) -> OrderingPolicy:
    """Build the named queue-ordering policy.

    ``seed`` feeds the lottery's generator; ``rate`` scales HRRN's cost
    estimate into seconds. Both are ignored by the other policies.
    """
    if name == "fifo":
        return FIFOPolicy()
    if name == "sjf":
        return SJFPolicy()
    if name == "hrrn":
        return HRRNPolicy(rate)
    if name == "fair":
        return FairSharePolicy()
    if name == "lottery":
        return LotteryPolicy(seed)
    raise ConfigError(
        f"unknown ordering policy {name!r}; choose from {', '.join(ORDERING_POLICIES)}"
    )
