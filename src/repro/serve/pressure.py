"""Resource-pressure watermarks for serve admission control.

A long-lived daemon must stop *accepting* work before the host actually
runs out of disk, memory, or file descriptors — hitting the wall
mid-run turns into per-job aborts; hitting it at admission is a clean,
immediate shed with a structured reason the client can act on.

:class:`ResourceWatermarks` declares the floor for each resource;
:class:`PressureProbe` samples the host against it (rate-limited, so a
submit storm does not turn into a ``statvfs`` storm) and returns a
``resource-pressure:<resource>: ...`` reason string when any floor is
breached. The samplers are injectable, which is how the chaos tier and
the tests drive the daemon into pressure without filling a real disk.

Reason grammar (machine-readable prefix, human-readable tail)::

    resource-pressure:disk: free 12.0MB < floor 64.0MB
    resource-pressure:memory: available 90.0MB < floor 128.0MB
    resource-pressure:fd: 1010/1024 descriptors in use (>= 95%)
    resource-pressure:wal-write: ...   (emitted by the daemon, not here)
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.obs.clock import Clock, ensure_clock
from repro.utils.errors import ConfigError

#: Prefix of every pressure-shed reason (mirrored by
#: :data:`repro.serve.admission.SHED_RESOURCE`).
PRESSURE_PREFIX = "resource-pressure"


def free_disk_bytes(path: str) -> Optional[int]:
    """Free bytes on the filesystem holding ``path`` (None if unknowable)."""
    try:
        stat = os.statvfs(path)
    except OSError:
        return None
    return stat.f_bavail * stat.f_frsize


def available_memory_bytes() -> Optional[int]:
    """``MemAvailable`` from ``/proc/meminfo`` (None off Linux)."""
    try:
        with open("/proc/meminfo", "r") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def fd_usage() -> Optional[Tuple[int, int]]:
    """``(open_fds, soft_limit)`` for this process (None if unknowable)."""
    try:
        import resource

        soft, _hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        n_open = len(os.listdir("/proc/self/fd"))
    except (OSError, ImportError, ValueError):
        return None
    return n_open, soft


def _mb(n: int) -> str:
    return f"{n / (1024 * 1024):.1f}MB"


@dataclass(frozen=True)
class ResourceWatermarks:
    """Floors below which the daemon sheds new submissions.

    A floor of zero disables that resource's check entirely (the
    default daemon runs uncapped, exactly as before this tier existed).
    """

    #: Shed when free disk under ``path`` drops below this many bytes.
    min_disk_bytes: int = 0
    #: Shed when ``MemAvailable`` drops below this many bytes.
    min_memory_bytes: int = 0
    #: Shed when open fds reach this fraction of ``RLIMIT_NOFILE``
    #: (1.0 disables the check).
    max_fd_fraction: float = 1.0
    #: Filesystem to probe for the disk floor (the WAL/journal dir).
    path: str = "."

    def __post_init__(self) -> None:
        if self.min_disk_bytes < 0 or self.min_memory_bytes < 0:
            raise ConfigError("watermark byte floors must be >= 0")
        if not 0.0 < self.max_fd_fraction <= 1.0:
            raise ConfigError(
                f"max_fd_fraction must be in (0, 1], got {self.max_fd_fraction}"
            )

    @property
    def enabled(self) -> bool:
        return (
            self.min_disk_bytes > 0
            or self.min_memory_bytes > 0
            or self.max_fd_fraction < 1.0
        )


class PressureProbe:
    """Samples the host against watermarks; injectable and rate-limited.

    ``check()`` returns None when healthy, else the full shed reason.
    Samples are cached for ``interval`` seconds so admission stays O(1)
    under submit storms; an unreadable sampler (non-Linux ``/proc``,
    racing statvfs) reads as healthy — pressure shedding is an
    optimization, never a correctness gate.
    """

    def __init__(
        self,
        watermarks: ResourceWatermarks,
        *,
        interval: float = 1.0,
        disk_fn: Optional[Callable[[str], Optional[int]]] = None,
        memory_fn: Optional[Callable[[], Optional[int]]] = None,
        fd_fn: Optional[Callable[[], Optional[Tuple[int, int]]]] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.watermarks = watermarks
        self.interval = interval
        self.clock = ensure_clock(clock)
        self._disk_fn = disk_fn if disk_fn is not None else free_disk_bytes
        self._memory_fn = memory_fn if memory_fn is not None else available_memory_bytes
        self._fd_fn = fd_fn if fd_fn is not None else fd_usage
        self._cached: Optional[str] = None
        self._cached_at: Optional[float] = None
        self.checks = 0
        self.trips = 0

    def check(self) -> Optional[str]:
        """None when every watermark holds, else the shed reason."""
        wm = self.watermarks
        if not wm.enabled:
            return None
        now = self.clock.now()
        if self._cached_at is not None and now - self._cached_at < self.interval:
            return self._cached
        self.checks += 1
        reason = self._sample()
        self._cached = reason
        self._cached_at = now
        if reason is not None:
            self.trips += 1
        return reason

    def _sample(self) -> Optional[str]:
        wm = self.watermarks
        if wm.min_disk_bytes > 0:
            free = self._disk_fn(wm.path)
            if free is not None and free < wm.min_disk_bytes:
                return (
                    f"{PRESSURE_PREFIX}:disk: free {_mb(free)} < floor "
                    f"{_mb(wm.min_disk_bytes)}"
                )
        if wm.min_memory_bytes > 0:
            avail = self._memory_fn()
            if avail is not None and avail < wm.min_memory_bytes:
                return (
                    f"{PRESSURE_PREFIX}:memory: available {_mb(avail)} < floor "
                    f"{_mb(wm.min_memory_bytes)}"
                )
        if wm.max_fd_fraction < 1.0:
            usage = self._fd_fn()
            if usage is not None:
                n_open, limit = usage
                if limit > 0 and n_open >= wm.max_fd_fraction * limit:
                    return (
                        f"{PRESSURE_PREFIX}:fd: {n_open}/{limit} descriptors "
                        f"in use (>= {wm.max_fd_fraction:.0%})"
                    )
        return None
