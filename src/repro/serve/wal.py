"""The serve daemon's submission write-ahead log (``*.srvj``).

The daemon journals every accepted job *before* acknowledging the
submission, then journals its start and its terminal outcome. After a
``kill -9`` of the daemon, ``repro serve --resume`` scans this log and
reconstructs the job table: finished jobs become history, accepted-but
-unfinished jobs are re-queued, and started jobs whose per-run commit
journal survived resume mid-run through :mod:`repro.durable`.

The framing is the same crash-tolerant scheme as the run-level commit
journal (:mod:`repro.durable.journal`): ``MAGIC`` then length+CRC framed
pickled dicts, torn tails expected and cleanly truncated on resume.
Payloads here are plain JSON-safe dicts (a :class:`~repro.serve.job
.JobSpec` round-trips through ``to_dict``), so the log never couples to
runtime object layouts.

Unlike the commit journal, this log *is* thread-safe: submissions land
from the IPC thread while finishes land from per-job runner threads, so
every append happens under one lock (which also makes the log a
linearization of the daemon's admission order).
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.check.lock_lint import make_lock
from repro.serve.job import TERMINAL_STATES, JobSpec
from repro.utils.errors import JournalError, JournalIOError

#: File magic of the serve submission log, versioned independently of
#: the run-level commit journal.
MAGIC = b"REPRO-SRVJ\x01\n"

_HEADER = struct.Struct("<II")
_MAX_RECORD = 1 << 30


def _frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _encode(record: Dict[str, Any]) -> bytes:
    return _frame(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))


class ServeJournal:
    """Append side of the submission log (the daemon's end)."""

    def __init__(
        self,
        path: str,
        fh: io.BufferedWriter,
        *,
        fsync: bool = True,
        io_policy: Optional[Any] = None,
    ) -> None:
        self.path = path
        self._fh: Optional[io.BufferedWriter] = fh
        self.fsync = fsync
        self._lock = make_lock("serve.wal")
        self.records_written = 0
        #: Injected resource faults (:class:`~repro.cluster.faults.IoPolicy`
        #: or None) — same contract as the run-level commit journal.
        self.io_policy = io_policy
        #: Offset after the last intact record (the repair point).
        self._good_offset = len(MAGIC)
        self.write_errors = 0
        self.compactions = 0

    @classmethod
    def create(
        cls, path: str, *, fsync: bool = True, io_policy: Optional[Any] = None
    ) -> "ServeJournal":
        """Start a fresh submission log (truncates an existing file)."""
        fh = open(path, "wb")
        fh.write(MAGIC)
        fh.flush()
        return cls(path, fh, fsync=fsync, io_policy=io_policy)

    @classmethod
    def open_resume(
        cls, scan: "ServeScan", *, fsync: bool = True, io_policy: Optional[Any] = None
    ) -> "ServeJournal":
        """Reopen a scanned log for append, truncating any torn tail."""
        with open(scan.path, "rb+") as trunc:
            trunc.truncate(scan.valid_bytes)
        fh = open(scan.path, "ab")
        journal = cls(scan.path, fh, fsync=fsync, io_policy=io_policy)
        journal._good_offset = scan.valid_bytes
        return journal

    def _repair_locked(self) -> None:
        """Truncate back to the last good frame after a failed write
        (mirrors :meth:`repro.durable.journal.CommitJournal._repair`)."""
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        try:
            os.truncate(self.path, self._good_offset)
        except OSError:
            pass
        try:
            self._fh = open(self.path, "ab")
        except OSError:
            pass

    def _write(self, record: Dict[str, Any]) -> None:
        with self._lock:
            if self._fh is None:
                raise JournalError(f"serve journal {self.path!r} is closed")
            raw = _encode(record)
            fault = self.io_policy.fault("write") if self.io_policy else None
            try:
                if fault is not None and fault.kind == "partial":
                    self._fh.write(raw[: fault.cut(len(raw))])
                    self._fh.flush()
                    raise fault.to_oserror()
                if fault is not None:
                    raise fault.to_oserror()
                self._fh.write(raw)
                self._fh.flush()
            except OSError as exc:
                self.write_errors += 1
                self._repair_locked()
                raise JournalIOError(
                    f"serve journal write failed on {self.path!r}: {exc}",
                    op="write", errno=exc.errno, path=self.path,
                ) from exc
            if self.fsync:
                try:
                    if self.io_policy:
                        self.io_policy.check("fsync")
                    os.fsync(self._fh.fileno())
                except OSError as exc:
                    self.write_errors += 1
                    self._repair_locked()
                    raise JournalIOError(
                        f"serve journal fsync failed on {self.path!r}: {exc}",
                        op="fsync", errno=exc.errno, path=self.path,
                    ) from exc
            self._good_offset += len(raw)
            self.records_written += 1

    # -- record writers --------------------------------------------------

    def submit(self, job_id: str, spec: JobSpec) -> None:
        """Journal an accepted submission (write-ahead of the ack)."""
        self._write({"type": "submit", "job_id": job_id, "spec": spec.to_dict()})

    def start(self, job_id: str, journal_path: Optional[str] = None) -> None:
        """Journal a job leaving the queue; ``journal_path`` names its
        per-run commit journal so resume can find it."""
        self._write({"type": "start", "job_id": job_id, "journal": journal_path})

    def finish(
        self, job_id: str, status: str, detail: str = "", reason: str = ""
    ) -> None:
        """Journal a terminal outcome (done/aborted/error/cancelled).

        ``reason`` is the machine-readable attribution string (e.g.
        ``resource-exhausted:disk:journal-write``) carried alongside the
        human-facing ``detail``.
        """
        if status not in TERMINAL_STATES:
            raise JournalError(f"finish with non-terminal status {status!r}")
        self._write({"type": "finish", "job_id": job_id,
                     "status": status, "detail": detail, "reason": reason})

    # -- compaction ------------------------------------------------------

    def compact(self, entries, keep_history: int = 64) -> int:
        """Rewrite the log as one record run per surviving job.

        A long-lived daemon appends forever; compaction rewrites the file
        to hold only unfinished jobs plus the ``keep_history`` most recent
        finished ones, using the same atomic tmp + fsync + ``os.replace``
        idiom as run-journal checkpoints — a crash mid-compaction leaves
        either the old intact log or the new intact log, never a hybrid.

        ``entries`` is the current job history in submission order
        (:class:`ServeEntry` values, e.g. from a fresh scan or the
        daemon's record table) — or a nullary callable returning it,
        invoked *under the WAL lock* so the snapshot cannot miss a
        concurrently-appended record. Returns the entries dropped.
        """
        with self._lock:
            if self._fh is None:
                raise JournalError(f"serve journal {self.path!r} is closed")
            entries = list(entries() if callable(entries) else entries)
            finished = [e for e in entries if e.finished]
            drop = (
                {e.job_id for e in finished[:-keep_history]}
                if keep_history >= 0 and len(finished) > keep_history
                else set()
            )
            kept = [e for e in entries if e.job_id not in drop]
            tmp = self.path + ".compact.tmp"
            raw = bytearray(MAGIC)
            for e in kept:
                raw += _encode(
                    {"type": "submit", "job_id": e.job_id, "spec": e.spec.to_dict()}
                )
                if e.status != "submitted":
                    raw += _encode(
                        {"type": "start", "job_id": e.job_id,
                         "journal": e.run_journal}
                    )
                if e.finished:
                    raw += _encode(
                        {"type": "finish", "job_id": e.job_id, "status": e.status,
                         "detail": e.detail, "reason": e.reason}
                    )
            try:
                with open(tmp, "wb") as out:
                    if self.io_policy:
                        self.io_policy.check("write")
                    out.write(raw)
                    out.flush()
                    if self.fsync:
                        if self.io_policy:
                            self.io_policy.check("fsync")
                        os.fsync(out.fileno())
            except OSError as exc:
                self.write_errors += 1
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise JournalIOError(
                    f"serve journal compaction failed on {self.path!r}: {exc}",
                    op="compact", errno=exc.errno, path=self.path,
                ) from exc
            self._fh.close()
            self._fh = None
            os.replace(tmp, self.path)
            try:
                self._fh = open(self.path, "ab")
            except OSError as exc:
                raise JournalIOError(
                    f"cannot reopen compacted serve journal {self.path!r}: {exc}",
                    op="open", errno=exc.errno, path=self.path,
                ) from exc
            self._good_offset = len(raw)
            self.compactions += 1
            return len(entries) - len(kept)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def abandon(self) -> None:
        """Drop the file handle *without* flushing buffered bytes — the
        in-process stand-in for the daemon dying mid-write (the chaos
        tier's kill switch; a real SIGKILL needs no help)."""
        with self._lock:
            self._fh = None

    def __enter__(self) -> "ServeJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


@dataclass
class ServeEntry:
    """One job's recovered history from the submission log."""

    job_id: str
    spec: JobSpec
    #: ``submitted`` | ``started`` | a terminal job state.
    status: str = "submitted"
    detail: str = ""
    #: Per-run commit journal path recorded at start, if any.
    run_journal: Optional[str] = None
    #: Machine-readable terminal attribution (``resource-exhausted:...``).
    reason: str = ""

    @property
    def finished(self) -> bool:
        return self.status in TERMINAL_STATES


@dataclass
class ServeScan:
    """The decoded valid prefix of one submission log."""

    path: str
    entries: Dict[str, ServeEntry] = field(default_factory=dict)
    #: Job ids in submission order.
    order: List[str] = field(default_factory=list)
    valid_bytes: int = 0
    truncated: bool = False
    diagnostic: str = ""

    def pending(self) -> Tuple[ServeEntry, ...]:
        """Accepted jobs with no terminal record, in submission order —
        exactly what ``--resume`` must run (or re-run)."""
        return tuple(
            self.entries[job_id]
            for job_id in self.order
            if not self.entries[job_id].finished
        )

    @property
    def max_job_number(self) -> int:
        """Largest numeric suffix among recovered ids (counter priming)."""
        best = 0
        for job_id in self.order:
            tail = job_id.rsplit("-", 1)[-1]
            if tail.isdigit():
                best = max(best, int(tail))
        return best


def scan_serve_journal(path: str) -> ServeScan:
    """Decode the valid prefix of a submission log.

    Mirrors :func:`repro.durable.journal.scan_journal`: raises
    :class:`JournalError` only for a missing file or bad magic; torn or
    corrupt tails terminate the scan cleanly with a diagnostic and the
    intact prefix is recovered. Records for unknown job ids (a ``start``
    whose ``submit`` fell in the torn tail cannot happen — appends are
    ordered — but a corrupt scan could surface one) are dropped, not
    fatal.
    """
    try:
        fh = open(path, "rb")
    except OSError as exc:
        raise JournalError(f"cannot open serve journal {path!r}: {exc}") from exc
    scan = ServeScan(path=path)
    with fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise JournalError(
                f"{path!r} is not a serve journal (bad magic {magic[:12]!r})"
            )
        offset = len(MAGIC)
        scan.valid_bytes = offset
        while True:
            header = fh.read(_HEADER.size)
            if not header:
                break
            if len(header) < _HEADER.size:
                scan.truncated = True
                scan.diagnostic = (
                    f"torn frame header at offset {offset} "
                    f"({len(header)} of {_HEADER.size} bytes)"
                )
                break
            length, crc = _HEADER.unpack(header)
            if length > _MAX_RECORD:
                scan.truncated = True
                scan.diagnostic = (
                    f"implausible record length {length} at offset {offset}"
                )
                break
            payload = fh.read(length)
            if len(payload) < length:
                scan.truncated = True
                scan.diagnostic = (
                    f"torn record at offset {offset}: header promises "
                    f"{length} bytes, file holds {len(payload)}"
                )
                break
            if zlib.crc32(payload) != crc:
                scan.truncated = True
                scan.diagnostic = f"CRC mismatch at offset {offset}"
                break
            try:
                record = pickle.loads(payload)
                kind = record["type"]
            except Exception as exc:
                scan.truncated = True
                scan.diagnostic = f"undecodable record at offset {offset}: {exc}"
                break
            offset += _HEADER.size + length
            scan.valid_bytes = offset
            if kind == "submit":
                job_id = record["job_id"]
                entry = ServeEntry(job_id, JobSpec.from_dict(record["spec"]))
                scan.entries[job_id] = entry
                scan.order.append(job_id)
            elif kind == "start":
                entry_opt = scan.entries.get(record["job_id"])
                if entry_opt is not None:
                    entry_opt.status = "started"
                    entry_opt.run_journal = record.get("journal")
            elif kind == "finish":
                entry_opt = scan.entries.get(record["job_id"])
                if entry_opt is not None:
                    entry_opt.status = record["status"]
                    entry_opt.detail = record.get("detail", "")
                    entry_opt.reason = record.get("reason", "")
    return scan
