"""Small shared utilities: error types, deterministic ids, validation helpers."""

from repro.utils.errors import (
    ReproError,
    PatternError,
    PartitionError,
    SchedulerError,
    TransportError,
    FaultToleranceExhausted,
    ConfigError,
)
from repro.utils.validate import check_positive, check_nonnegative, check_in

__all__ = [
    "ReproError",
    "PatternError",
    "PartitionError",
    "SchedulerError",
    "TransportError",
    "FaultToleranceExhausted",
    "ConfigError",
    "check_positive",
    "check_nonnegative",
    "check_in",
]
