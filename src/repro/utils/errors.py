"""Exception hierarchy for the EasyHPS reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the runtime may raise with a single ``except`` clause
while still being able to discriminate by subsystem.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class PatternError(ReproError):
    """A DAG pattern is malformed (cycle, bad vertex, inconsistent degrees)."""


class PartitionError(ReproError):
    """Task partition parameters do not fit the problem (bad block shape)."""


class SchedulerError(ReproError):
    """A scheduler was driven into an invalid state (double completion, ...)."""


class TransportError(ReproError):
    """A message transport failed or was used after closing."""


class FaultToleranceExhausted(ReproError):
    """A sub-task kept failing beyond the configured retry budget.

    ``job_id`` attributes the abort to one run when many share a process
    (the ``repro serve`` daemon): multi-job traces and ``repro stats``
    can then charge the abort to the right tenant instead of guessing
    from interleaved telemetry. ``None`` for standalone runs.
    """

    def __init__(self, message: str, *, job_id: "str | None" = None) -> None:
        super().__init__(message)
        self.job_id = job_id

    def __str__(self) -> str:
        base = super().__str__()
        if self.job_id is not None:
            return f"[job {self.job_id}] {base}"
        return base


class ResourceExhausted(FaultToleranceExhausted):
    """A machine resource (disk, shm, fds, memory) ran out and the
    configured degradation policy could not absorb it.

    Subclasses :class:`FaultToleranceExhausted` so every existing
    clean-abort path — chaos campaign classification, the serve daemon's
    per-job fault domain, the CLI exit code — treats it as an attributed
    abort rather than a crash. ``resource`` names what ran out
    (``disk``/``shm``/``fd``/``memory``), ``op`` the operation that hit
    the wall (``journal-write``, ``shm-park``, ...); :attr:`reason` is
    the machine-readable form carried through serve IPC.
    """

    def __init__(
        self,
        message: str,
        *,
        job_id: "str | None" = None,
        resource: str = "disk",
        op: str = "",
    ) -> None:
        super().__init__(message, job_id=job_id)
        self.resource = resource
        self.op = op

    @property
    def reason(self) -> str:
        """Machine-readable abort reason, e.g.
        ``resource-exhausted:disk:journal-write``."""
        parts = ["resource-exhausted", self.resource]
        if self.op:
            parts.append(self.op)
        return ":".join(parts)

    def __reduce__(self):
        # Keyword-only attributes do not survive the default Exception
        # pickling (which replays only *args); rebuild explicitly so the
        # attribution crosses process and IPC boundaries intact.
        args = self.args[0] if self.args else ""
        return (
            _rebuild_resource_exhausted,
            (args, self.job_id, self.resource, self.op),
        )


def _rebuild_resource_exhausted(message, job_id, resource, op):
    return ResourceExhausted(message, job_id=job_id, resource=resource, op=op)


class ConfigError(ReproError, ValueError):
    """A run configuration is invalid or inconsistent.

    Also a :class:`ValueError` so call sites that historically raised bare
    ``ValueError`` for bad arguments could migrate here without breaking
    callers that catch the built-in type.
    """


class CheckError(ReproError):
    """A :mod:`repro.check` pass found violations (see the message for the
    per-diagnostic listing)."""


class ChaosError(ReproError):
    """A chaos campaign found an invariant violation (wrong answer, hang,
    or a failed trace invariant) — see the per-run listing in the message."""


class JournalError(ReproError):
    """The write-ahead commit journal is unusable (missing file, bad
    magic, no begin record) — distinct from a merely *truncated* journal,
    which recovery handles by falling back to the valid prefix."""


class JournalIOError(JournalError):
    """A journal (or serve WAL) write/fsync hit an I/O failure — ENOSPC,
    EIO, an injected partial write — *after* the file itself was valid.

    Distinct from the parent: the journal's committed prefix is still
    CRC-recoverable (the writer truncates any torn bytes back to the
    last good frame boundary before raising). Callers may retry the
    failed record or degrade per ``RunConfig.journal_degrade``.
    """

    def __init__(
        self,
        message: str,
        *,
        op: str = "write",
        errno: "int | None" = None,
        path: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.op = op
        self.errno = errno
        self.path = path


class MasterCrash(ReproError):
    """Injected master failure (chaos testing): the master \"dies\" at a
    journal commit boundary, exactly like a ``kill -9`` mid-run. Raised by
    the journal's kill switch (``RunConfig.journal_kill_after``); a
    subsequent ``repro resume`` must reconstruct the run from the journal."""


class WorkerLeakWarning(UserWarning):
    """A worker thread survived its join timeout and was abandoned.

    Raised as a *warning* (the run's result is already complete and
    correct by the time pools are torn down), but surfaced instead of
    silently discarding the join result so soak tests and telemetry can
    detect runaway threads."""
