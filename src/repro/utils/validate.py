"""Tiny argument-validation helpers used across the package.

They raise :class:`~repro.utils.errors.ConfigError` with a uniform message
format so configuration mistakes surface early and readably instead of as
deep ``IndexError``/``KeyError`` stacks inside the scheduler.
"""

from __future__ import annotations

from typing import Any, Collection

from repro.utils.errors import ConfigError


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value!r}")


def check_in(name: str, value: Any, allowed: Collection[Any]) -> None:
    """Require ``value`` to be one of ``allowed``."""
    if value not in allowed:
        raise ConfigError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Require ``0 <= value <= 1`` (and that it is a real number at all)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"{name} must be a probability in [0, 1], got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1], got {value!r}")


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Require ``isinstance(value, expected)`` with a readable message."""
    if not isinstance(value, expected):
        names = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise ConfigError(
            f"{name} must be {names}, got {type(value).__name__} ({value!r})"
        )
