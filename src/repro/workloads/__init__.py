"""``repro.workloads`` — seeded arrival traces and trace-driven replay.

Generators for service-shaped load (Poisson bursts, diurnal cycles,
heavy-tailed job sizes) and a replay harness that drives a
:class:`~repro.serve.daemon.ServeDaemon` from a trace and reports
per-tenant wait/slowdown/throughput. See ``docs/serving.md``.
"""

from repro.workloads.arrivals import (
    DEFAULT_TENANTS,
    TRACE_KINDS,
    ArrivalEvent,
    diurnal_trace,
    heavy_tail_trace,
    make_trace,
    poisson_burst_trace,
)
from repro.workloads.replay import ReplayReport, replay, throughput

__all__ = [
    "ArrivalEvent",
    "DEFAULT_TENANTS",
    "TRACE_KINDS",
    "diurnal_trace",
    "heavy_tail_trace",
    "make_trace",
    "poisson_burst_trace",
    "ReplayReport",
    "replay",
    "throughput",
]
