"""Seeded arrival-trace generators for the serve daemon.

A trace is a tuple of :class:`ArrivalEvent` — (arrival offset, tenant,
job spec fields) — drawn from one of three stochastic shapes:

- **poisson-burst**: a base Poisson process with periodic bursts at a
  multiplied rate (flash crowds hitting a service);
- **diurnal**: a sinusoidally modulated Poisson process (day/night
  load);
- **heavy-tail**: Poisson arrivals whose job *sizes* follow a bounded
  Pareto, so most jobs are small and a few are much larger (the mix
  that makes FIFO-vs-SJF policy choices visible).

Everything is derived from ``numpy.random.default_rng(seed)``, so a
trace is a pure function of its parameters — the chaos tier and the
replay harness regenerate identical campaigns from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Sequence, Tuple

import numpy as np

from repro.utils.errors import ConfigError

#: Trace shapes accepted by :func:`make_trace`.
TRACE_KINDS: Tuple[str, ...] = ("poisson-burst", "diurnal", "heavy-tail")

DEFAULT_TENANTS: Tuple[str, ...] = ("acme", "globex", "initech")


@dataclass(frozen=True)
class ArrivalEvent:
    """One job arrival: when, who, and what to run."""

    t: float
    tenant: str
    algo: str
    size: int
    seed: int

    def spec_dict(self, **overrides: Any) -> Dict[str, Any]:
        """The JSON-safe submission dict this arrival turns into."""
        out: Dict[str, Any] = {
            "tenant": self.tenant,
            "algo": self.algo,
            "size": self.size,
            "seed": self.seed,
        }
        out.update(overrides)
        return out


def _draw_common(
    rng: np.random.Generator,
    n: int,
    tenants: Sequence[str],
    algos: Sequence[str],
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    if not tenants or not algos:
        raise ConfigError("tenants and algos must be non-empty")
    drawn_tenants = tuple(tenants[int(i)] for i in rng.integers(len(tenants), size=n))
    drawn_algos = tuple(algos[int(i)] for i in rng.integers(len(algos), size=n))
    return drawn_tenants, drawn_algos


def poisson_burst_trace(
    n: int,
    *,
    seed: int = 0,
    base_rate: float = 2.0,
    burst_factor: float = 8.0,
    burst_every: float = 10.0,
    burst_len: float = 2.0,
    size: int = 28,
    tenants: Sequence[str] = DEFAULT_TENANTS,
    algos: Sequence[str] = ("edit-distance",),
) -> Tuple[ArrivalEvent, ...]:
    """Poisson arrivals at ``base_rate``/s, with windows of length
    ``burst_len`` every ``burst_every`` seconds running ``burst_factor``
    times hotter (thinning construction: draw at the peak rate, keep
    off-burst arrivals with probability ``1/burst_factor``)."""
    if base_rate <= 0 or burst_factor < 1:
        raise ConfigError("base_rate must be > 0 and burst_factor >= 1")
    rng = np.random.default_rng(seed)
    peak = base_rate * burst_factor
    times = []
    t = 0.0
    while len(times) < n:
        t += float(rng.exponential(1.0 / peak))
        in_burst = (t % burst_every) < burst_len
        if in_burst or rng.random() < 1.0 / burst_factor:
            times.append(t)
    drawn_tenants, drawn_algos = _draw_common(rng, n, tenants, algos)
    return tuple(
        ArrivalEvent(times[i], drawn_tenants[i], drawn_algos[i], size, int(i))
        for i in range(n)
    )


def diurnal_trace(
    n: int,
    *,
    seed: int = 0,
    period: float = 60.0,
    peak_rate: float = 6.0,
    trough_rate: float = 0.5,
    size: int = 28,
    tenants: Sequence[str] = DEFAULT_TENANTS,
    algos: Sequence[str] = ("edit-distance",),
) -> Tuple[ArrivalEvent, ...]:
    """A sinusoidal rate between ``trough_rate`` and ``peak_rate`` with
    the given ``period`` (thinned from the peak rate)."""
    if peak_rate <= 0 or not 0 < trough_rate <= peak_rate:
        raise ConfigError("need 0 < trough_rate <= peak_rate")
    rng = np.random.default_rng(seed)
    times = []
    t = 0.0
    while len(times) < n:
        t += float(rng.exponential(1.0 / peak_rate))
        phase = 0.5 * (1.0 + np.sin(2.0 * np.pi * t / period))
        rate = trough_rate + (peak_rate - trough_rate) * phase
        if rng.random() < rate / peak_rate:
            times.append(t)
    drawn_tenants, drawn_algos = _draw_common(rng, n, tenants, algos)
    return tuple(
        ArrivalEvent(times[i], drawn_tenants[i], drawn_algos[i], size, int(i))
        for i in range(n)
    )


def heavy_tail_trace(
    n: int,
    *,
    seed: int = 0,
    rate: float = 3.0,
    size_min: int = 16,
    size_max: int = 96,
    alpha: float = 1.5,
    tenants: Sequence[str] = DEFAULT_TENANTS,
    algos: Sequence[str] = ("edit-distance",),
) -> Tuple[ArrivalEvent, ...]:
    """Poisson arrivals whose sizes follow a bounded Pareto(``alpha``)
    over ``[size_min, size_max]`` — mostly small jobs, a heavy tail of
    large ones."""
    if rate <= 0 or alpha <= 0:
        raise ConfigError("rate and alpha must be > 0")
    if not 2 <= size_min <= size_max:
        raise ConfigError(f"need 2 <= size_min <= size_max, got {size_min}..{size_max}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=n)
    times = np.cumsum(gaps)
    # Inverse-CDF of the bounded Pareto.
    u = rng.random(size=n)
    lo, hi = float(size_min), float(size_max)
    sizes = (lo**-alpha - u * (lo**-alpha - hi**-alpha)) ** (-1.0 / alpha)
    drawn_tenants, drawn_algos = _draw_common(rng, n, tenants, algos)
    return tuple(
        ArrivalEvent(
            float(times[i]), drawn_tenants[i], drawn_algos[i],
            int(np.clip(round(sizes[i]), size_min, size_max)), int(i),
        )
        for i in range(n)
    )


def make_trace(kind: str, n: int, *, seed: int = 0, **knobs: Any) -> Tuple[ArrivalEvent, ...]:
    """Build the named trace shape (see :data:`TRACE_KINDS`)."""
    if kind == "poisson-burst":
        return poisson_burst_trace(n, seed=seed, **knobs)
    if kind == "diurnal":
        return diurnal_trace(n, seed=seed, **knobs)
    if kind == "heavy-tail":
        return heavy_tail_trace(n, seed=seed, **knobs)
    raise ConfigError(
        f"unknown trace kind {kind!r}; choose from {', '.join(TRACE_KINDS)}"
    )
