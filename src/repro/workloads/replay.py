"""Trace-driven workload replay against a live serve daemon.

:func:`replay` feeds an arrival trace (see :mod:`repro.workloads
.arrivals`) into a :class:`~repro.serve.daemon.ServeDaemon`, honouring
inter-arrival gaps scaled by ``speed`` (``0`` collapses the trace to an
instantaneous batch — the overload case), then waits for the daemon to
go idle and reports per-tenant service quality: admission counts, shed
counts, wait/run/slowdown summaries, and terminal-state tallies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.serve.admission import AdmissionDecision
from repro.serve.daemon import ServeDaemon
from repro.workloads.arrivals import ArrivalEvent


@dataclass
class ReplayReport:
    """What one trace replay did to (and got from) the daemon."""

    submitted: int = 0
    accepted: int = 0
    shed: int = 0
    drained_idle: bool = False
    decisions: List[AdmissionDecision] = field(default_factory=list)
    #: tenant -> {submitted, accepted, shed, done, aborted, error,
    #: cancelled, wait_p50, wait_p95, slowdown_p50, ...}
    tenants: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def tenant(self, name: str) -> Dict[str, Any]:
        return self.tenants.setdefault(name, {
            "submitted": 0, "accepted": 0, "shed": 0,
            "done": 0, "aborted": 0, "error": 0, "cancelled": 0,
        })


def replay(
    daemon: ServeDaemon,
    trace: Sequence[ArrivalEvent],
    *,
    speed: float = 0.0,
    spec_overrides: Dict[str, Any] | None = None,
    chaos_tenants: Dict[str, Dict[str, float]] | None = None,
    wait_timeout: float = 120.0,
) -> ReplayReport:
    """Submit ``trace`` to ``daemon`` and summarize the outcome.

    ``speed`` scales inter-arrival gaps (1.0 = real trace time, 0 = all
    at once). ``spec_overrides`` merges into every submission dict
    (e.g. ``{"nodes": 2, "deadline": 5.0}``). ``chaos_tenants`` maps a
    tenant name to the chaos profile injected into *that tenant's jobs
    only* — the sabotage hook of the service chaos tier.
    """
    report = ReplayReport()
    overrides = dict(spec_overrides or {})
    sabotage = dict(chaos_tenants or {})
    prev_t = trace[0].t if trace else 0.0
    for event in trace:
        if speed > 0:
            gap = (event.t - prev_t) * speed
            if gap > 0:
                time.sleep(min(gap, 5.0))
            prev_t = event.t
        spec = event.spec_dict(**overrides)
        if event.tenant in sabotage:
            spec["chaos"] = dict(sabotage[event.tenant])
        decision = daemon.submit_dict(spec)
        report.submitted += 1
        report.decisions.append(decision)
        per = report.tenant(event.tenant)
        per["submitted"] += 1
        if decision.accepted:
            report.accepted += 1
            per["accepted"] += 1
        else:
            report.shed += 1
            per["shed"] += 1
    report.drained_idle = daemon.wait_idle(wait_timeout)
    _fold_outcomes(daemon, report)
    return report


def _fold_outcomes(daemon: ServeDaemon, report: ReplayReport) -> None:
    """Merge job outcomes and latency summaries into the report."""
    for snap in daemon.jobs():
        per = report.tenant(snap["tenant"])
        status = snap["status"]
        if status in per:
            per[status] += 1
    histograms = daemon.metrics.snapshot()["histograms"]
    shorts = {
        "serve.wait_seconds": "wait",
        "serve.run_seconds": "run",
        "serve.slowdown": "slowdown",
    }
    for key, value in histograms.items():
        for base, short in shorts.items():
            prefix = base + "{tenant="
            if key.startswith(prefix):
                tenant = key[len(prefix):].rstrip("}")
                per = report.tenant(tenant)
                if isinstance(value, dict):
                    for stat in ("p50", "p95", "p99", "mean", "count"):
                        if stat in value:
                            per[f"{short}_{stat}"] = value[stat]


def throughput(report: ReplayReport, elapsed: float) -> Tuple[float, float]:
    """(accepted, completed) jobs per second over ``elapsed`` seconds."""
    done = sum(per.get("done", 0) for per in report.tenants.values())
    if elapsed <= 0:
        return (0.0, 0.0)
    return (report.accepted / elapsed, done / elapsed)
