"""Shared fixtures: small problem instances and fast run configurations."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    EditDistance,
    LongestCommonSubsequence,
    MatrixChainOrder,
    Nussinov,
    SmithWatermanGG,
)
from repro.runtime.config import RunConfig


@pytest.fixture
def edit_distance_small() -> EditDistance:
    return EditDistance.random(37, 53, seed=7)


@pytest.fixture
def lcs_small() -> LongestCommonSubsequence:
    return LongestCommonSubsequence.random(41, 29, seed=3)


@pytest.fixture
def swgg_small() -> SmithWatermanGG:
    return SmithWatermanGG.random(23, 31, seed=11)


@pytest.fixture
def nussinov_small() -> Nussinov:
    return Nussinov.random(40, seed=5)


@pytest.fixture
def matrix_chain_small() -> MatrixChainOrder:
    return MatrixChainOrder.random(25, seed=9)


@pytest.fixture
def threads_config() -> RunConfig:
    """A quick threads-backend configuration for integration tests."""
    return RunConfig(
        nodes=3,
        threads_per_node=2,
        backend="threads",
        process_partition=16,
        thread_partition=4,
        task_timeout=20.0,
        subtask_timeout=10.0,
        poll_interval=0.005,
    )


@pytest.fixture
def sim_config() -> RunConfig:
    """A small simulated-backend configuration."""
    return RunConfig.experiment(3, 11, process_partition=64, thread_partition=16)
