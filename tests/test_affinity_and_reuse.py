"""Tests for affinity scheduling and the data-reuse (input cache) model."""

import pytest

from repro import RunConfig
from repro.algorithms import Nussinov, SmithWatermanGG
from repro.backends.simulated import run_simulated
from repro.dag.partition import partition_pattern
from repro.schedulers.policy import AffinityDynamicPolicy, DynamicPolicy, make_policy
from repro.utils.errors import ConfigError


class TestAffinityPolicyUnit:
    def test_prefers_task_with_local_neighbor(self):
        history = {0: {(0, 0)}, 1: set()}
        p = AffinityDynamicPolicy(
            2, neighbor_fn=lambda t: [(t[0], t[1] - 1)], history=history
        )
        ready = [(0, 1), (5, 5)]
        # Worker 0 computed (0,0): (0,1)'s neighbor — prefer it over the
        # LIFO head (5,5).
        assert p.select_index(0, ready) == 0
        # Worker 1 has no history: plain LIFO.
        assert p.select_index(1, ready) == 1

    def test_falls_back_to_lifo_without_local_work(self):
        p = AffinityDynamicPolicy(
            1, neighbor_fn=lambda t: [], history={0: {(9, 9)}}
        )
        assert p.select_index(0, [(0, 0), (0, 1)]) == 1

    def test_requires_callable_neighbor_fn(self):
        with pytest.raises(ConfigError):
            AffinityDynamicPolicy(1, neighbor_fn=None, history={})

    def test_factory_degrades_without_history(self):
        assert type(make_policy("dynamic-affinity", 2, 10)) is DynamicPolicy


class TestCachedInputBytes:
    def test_swgg_row_prefix_reuse(self):
        sw = SmithWatermanGG.random(400, seed=1)
        part = partition_pattern(sw.pattern(), 100)
        bid = (2, 2)
        full = sw.input_bytes(part, bid)
        with_left = sw.cached_input_bytes(part, bid, {(2, 1)})
        with_up = sw.cached_input_bytes(part, bid, {(1, 2)})
        with_both = sw.cached_input_bytes(part, bid, {(2, 1), (1, 2)})
        assert with_left < full
        assert with_up < full
        assert with_both < min(with_left, with_up)
        assert sw.cached_input_bytes(part, bid, set()) == full

    def test_triangular_strip_reuse(self):
        nu = Nussinov.random(300, seed=2)
        part = partition_pattern(nu.pattern(), 100)
        bid = (0, 2)
        full = nu.input_bytes(part, bid)
        assert nu.cached_input_bytes(part, bid, {(0, 1)}) < full  # W neighbor
        assert nu.cached_input_bytes(part, bid, {(1, 2)}) < full  # S neighbor
        assert nu.cached_input_bytes(part, bid, {(5, 5)}) == full  # stranger

    def test_default_is_no_reuse(self):
        from repro.algorithms import EditDistance

        ed = EditDistance.random(50, 50, seed=1)
        part = partition_pattern(ed.pattern(), 25)
        assert ed.cached_input_bytes(part, (1, 1), {(1, 0), (0, 1)}) == ed.input_bytes(
            part, (1, 1)
        )


class TestSimulatedReuse:
    def test_reuse_off_by_default(self):
        sw = SmithWatermanGG.random(2000, seed=1)
        cfg = RunConfig.experiment(4, 16, process_partition=200, thread_partition=25)
        _, plain = run_simulated(sw, cfg)
        cfg_reuse = RunConfig.experiment(4, 16, process_partition=200, thread_partition=25,
                                         data_reuse=True)
        _, reused = run_simulated(sw, cfg_reuse)
        assert reused.bytes_to_slaves < plain.bytes_to_slaves * 0.75
        assert reused.makespan <= plain.makespan + 1e-9

    def test_affinity_scheduler_runs_end_to_end(self):
        nu = Nussinov.random(2000, seed=2)
        cfg = RunConfig.experiment(4, 16, scheduler="dynamic-affinity",
                                   process_partition=200, thread_partition=25,
                                   data_reuse=True)
        _, rep = run_simulated(nu, cfg)
        assert rep.scheduler == "dynamic-affinity"
        assert rep.idle_while_ready == 0.0  # still a dynamic pool
        assert sum(rep.tasks_per_worker.values()) == rep.n_tasks

    def test_reuse_does_not_change_schedule_correctness(self):
        """Reuse only shrinks transfers; every task still runs once."""
        sw = SmithWatermanGG.random(1500, seed=3)
        cfg = RunConfig.experiment(3, 11, process_partition=300, thread_partition=50,
                                   data_reuse=True, scheduler="dynamic-affinity")
        _, rep = run_simulated(sw, cfg)
        assert rep.n_tasks == 25
        assert rep.faults_recovered == 0
