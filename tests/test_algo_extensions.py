"""Tests for the extension algorithms: Needleman-Wunsch, Viterbi, CYK.

These cover the pattern families the paper's two headline workloads leave
unexercised end-to-end: max-form wavefront (NW), the pure chain (Viterbi)
and grammar recognition on the triangular pattern (CYK — named in the
paper's introduction as a motivating application).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EasyHPS, RunConfig
from repro.algorithms import CYKParsing, Grammar, NeedlemanWunsch, ViterbiDecoding
from repro.dag.library import ChainPattern, TriangularPattern, WavefrontPattern
from repro.dag.partition import partition_pattern


def run_blocked(problem, proc, thread):
    part = partition_pattern(problem.pattern(), proc)
    state = problem.make_state()
    for bid in part.abstract.topological_order():
        inputs = problem.extract_inputs(state, part, bid)
        ev = problem.evaluator(part, bid, inputs)
        outputs = ev.run_serial(part.sub_partition(bid, thread))
        problem.apply_result(state, part, bid, outputs)
    return problem.finalize(state), state


class TestNeedlemanWunsch:
    def test_blocked_equals_reference(self):
        nw = NeedlemanWunsch.random(33, 47, seed=1)
        res, _ = run_blocked(nw, 10, 4)
        assert np.isclose(res.score, nw.reference())

    def test_alignment_covers_both_sequences(self):
        nw = NeedlemanWunsch.random(25, 31, seed=2)
        res, _ = run_blocked(nw, 8, 4)
        assert res.aligned_a.replace("-", "") == nw.a
        assert res.aligned_b.replace("-", "") == nw.b
        assert len(res.aligned_a) == len(res.aligned_b)

    def test_identical_sequences_align_perfectly(self):
        nw = NeedlemanWunsch("ACGTACGT", "ACGTACGT")
        res, _ = run_blocked(nw, 3, 1)
        assert res.score == 8.0
        assert res.identity() == 1.0

    def test_all_gap_extreme(self):
        nw = NeedlemanWunsch("AAAA", "C", gap=1.0, mismatch=-5.0)
        res, _ = run_blocked(nw, 2, 1)
        assert np.isclose(res.score, nw.reference())

    def test_pattern_is_wavefront(self):
        assert isinstance(NeedlemanWunsch("AC", "GT").pattern(), WavefrontPattern)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            NeedlemanWunsch("A", "C", gap=-1.0)

    @given(
        a=st.text(alphabet="ACGT", min_size=1, max_size=18),
        b=st.text(alphabet="ACGT", min_size=1, max_size=18),
        proc=st.integers(1, 7),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_blocked_equals_reference(self, a, b, proc):
        nw = NeedlemanWunsch(a, b)
        res, _ = run_blocked(nw, proc, max(1, proc // 2))
        assert np.isclose(res.score, nw.reference())


class TestViterbi:
    def test_blocked_equals_reference(self):
        vi = ViterbiDecoding.random(57, n_states=5, seed=2)
        res, _ = run_blocked(vi, 10, 4)
        assert np.isclose(res.log_prob, vi.reference())

    def test_path_rescores_to_reported_logprob(self):
        vi = ViterbiDecoding.random(40, n_states=4, seed=3)
        res, _ = run_blocked(vi, 8, 2)
        lp = vi.log_pi[res.path[0]] + vi.log_b[res.path[0], vi.obs[0]]
        for t in range(1, vi.T):
            lp += vi.log_a[res.path[t - 1], res.path[t]] + vi.log_b[res.path[t], vi.obs[t]]
        assert np.isclose(lp, res.log_prob)

    def test_path_length_and_range(self):
        vi = ViterbiDecoding.random(25, n_states=3, seed=4)
        res, _ = run_blocked(vi, 5, 1)
        assert len(res.path) == 25
        assert all(0 <= s < 3 for s in res.path)

    def test_deterministic_hmm_recovers_forced_path(self):
        # Two states; state equals the observed symbol with certainty.
        big, small = 0.0, -1e3
        log_pi = np.array([np.log(0.5), np.log(0.5)])
        log_a = np.array([[np.log(0.5), np.log(0.5)], [np.log(0.5), np.log(0.5)]])
        log_b = np.array([[big, small], [small, big]])
        obs = np.array([0, 1, 1, 0, 1])
        vi = ViterbiDecoding(log_pi, log_a, log_b, obs)
        res, _ = run_blocked(vi, 2, 1)
        assert res.path == (0, 1, 1, 0, 1)

    def test_pattern_is_chain(self):
        assert isinstance(ViterbiDecoding.random(10, seed=0).pattern(), ChainPattern)

    def test_single_observation(self):
        vi = ViterbiDecoding.random(1, seed=0)
        res, _ = run_blocked(vi, 1, 1)
        assert np.isclose(res.log_prob, vi.reference())

    def test_validation(self):
        with pytest.raises(ValueError):
            ViterbiDecoding(np.zeros(2), np.zeros((3, 3)), np.zeros((2, 2)), np.array([0]))
        with pytest.raises(ValueError):
            ViterbiDecoding(np.zeros(2), np.zeros((2, 2)), np.zeros((2, 2)), np.array([5]))

    def test_chain_cost_model(self):
        vi = ViterbiDecoding.random(32, n_states=4, seed=1)
        part = partition_pattern(vi.pattern(), 8)
        assert vi.block_flops(part, (0,)) == 8 * 16
        assert vi.input_bytes(part, (0,)) == 0  # first block ships nothing
        assert vi.input_bytes(part, (1,)) == 8 * 4

    @given(T=st.integers(1, 40), proc=st.integers(1, 9))
    @settings(max_examples=25, deadline=None)
    def test_property_blocked_equals_reference(self, T, proc):
        vi = ViterbiDecoding.random(T, n_states=3, seed=T)
        res, _ = run_blocked(vi, proc, max(1, proc // 2))
        assert np.isclose(res.log_prob, vi.reference())


class TestGrammar:
    def test_builtin_grammars_validate(self):
        Grammar.arithmetic()
        Grammar.palindromes()

    def test_terminal_mask(self):
        g = Grammar.palindromes()
        mask = g.terminal_mask("a")
        assert mask & (np.uint64(1) << np.uint64(g.index("P")))
        assert mask & (np.uint64(1) << np.uint64(g.index("A")))
        assert not mask & (np.uint64(1) << np.uint64(g.index("B")))

    def test_generate_in_language(self):
        g = Grammar.arithmetic()
        rng = np.random.default_rng(1)
        for _ in range(5):
            s = g.generate(rng, max_len=20)
            assert CYKParsing(g, s).reference()

    def test_validation(self):
        with pytest.raises(ValueError, match="start symbol"):
            Grammar(("A",), "B", (), (("A", "a"),))
        with pytest.raises(ValueError, match="unknown nonterminals"):
            Grammar(("A",), "A", (("A", "A", "Z"),), ())
        with pytest.raises(ValueError, match="one character"):
            Grammar(("A",), "A", (), (("A", "ab"),))
        with pytest.raises(ValueError, match="at most 64"):
            Grammar(tuple(f"N{i}" for i in range(65)), "N0", (), (("N0", "a"),))


class TestCYK:
    @pytest.mark.parametrize("text,expected", [
        ("a", True), ("a+a", True), ("a*a+a", True), ("(a+a)*a", True),
        ("((a))", True), ("+", False), ("a+", False), ("(a", False),
        ("aa", False), ("a++a", False),
    ])
    def test_arithmetic_recognition(self, text, expected):
        cy = CYKParsing(Grammar.arithmetic(), text)
        res, _ = run_blocked(cy, 3, 2)
        assert res.accepted == expected
        assert res.accepted == cy.reference()

    @pytest.mark.parametrize("text,expected", [
        ("a", True), ("aba", True), ("abba", True), ("babab", True),
        ("ab", False), ("aab", False),
    ])
    def test_palindrome_recognition(self, text, expected):
        res, _ = run_blocked(CYKParsing(Grammar.palindromes(), text), 2, 1)
        assert res.accepted == expected

    def test_tree_is_valid_derivation(self):
        g = Grammar.arithmetic()
        res, _ = run_blocked(CYKParsing(g, "(a+a)*a"), 3, 1)
        binary = set(g.binary_rules)
        terminal = set(g.terminal_rules)

        def leaves(node):
            if len(node) == 2:
                assert (node[0], node[1]) in terminal, node
                return node[1]
            head, left, right = node
            assert (head, left[0], right[0]) in binary, node
            return leaves(left) + leaves(right)

        assert res.tree[0] == g.start
        assert leaves(res.tree) == "(a+a)*a"

    def test_rejected_text_has_no_tree(self):
        res, _ = run_blocked(CYKParsing(Grammar.arithmetic(), "a+"), 2, 1)
        assert res.tree is None

    def test_foreign_characters_rejected(self):
        with pytest.raises(ValueError, match="outside the grammar"):
            CYKParsing(Grammar.arithmetic(), "a-b")

    def test_pattern_and_dtype(self):
        cy = CYKParsing(Grammar.palindromes(), "aba")
        assert isinstance(cy.pattern(), TriangularPattern)
        assert cy.make_state()["F"].dtype == np.uint64

    def test_through_threads_backend(self):
        g = Grammar.arithmetic()
        cy = CYKParsing(g, "(a+a)*(a+a*a)+a")
        run = EasyHPS(RunConfig(nodes=3, threads_per_node=2, backend="threads",
                                process_partition=4, thread_partition=2)).run(cy)
        assert run.value.accepted == cy.reference() is True

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_blocked_equals_reference(self, data):
        g = Grammar.palindromes()
        text = data.draw(st.text(alphabet="ab", min_size=1, max_size=16))
        proc = data.draw(st.integers(1, 6))
        cy = CYKParsing(g, text)
        res, _ = run_blocked(cy, proc, max(1, proc // 2))
        assert res.accepted == cy.reference()
        # Acceptance must equal the palindrome predicate itself.
        assert res.accepted == (text == text[::-1])
