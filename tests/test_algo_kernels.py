"""Unit tests for the numpy DP kernels, against hand-rolled references."""

import numpy as np
import pytest

from repro.algorithms.kernels import (
    antidiagonal_indices,
    edit_distance_region,
    lcs_region,
    matrix_chain_region,
    nussinov_region,
)


class TestAntidiagonalIndices:
    def test_square(self):
        rows, cols = antidiagonal_indices(3, 3, 2)
        assert list(zip(rows, cols)) == [(0, 2), (1, 1), (2, 0)]

    def test_wide_region_clips(self):
        rows, cols = antidiagonal_indices(2, 5, 4)
        assert list(zip(rows, cols)) == [(0, 4), (1, 3)]

    def test_all_diagonals_cover_region(self):
        h, w = 4, 7
        seen = set()
        for d in range(h + w - 1):
            rows, cols = antidiagonal_indices(h, w, d)
            seen.update(zip(rows.tolist(), cols.tolist()))
        assert len(seen) == h * w


def _ed_reference(a: str, b: str) -> np.ndarray:
    m, n = len(a), len(b)
    D = np.zeros((m + 1, n + 1))
    D[0, :] = np.arange(n + 1)
    D[:, 0] = np.arange(m + 1)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            D[i, j] = min(D[i - 1, j] + 1, D[i, j - 1] + 1, D[i - 1, j - 1] + (a[i - 1] != b[j - 1]))
    return D


class TestEditDistanceRegion:
    def test_whole_block_matches_reference(self):
        a, b = "kitten", "sitting"
        ref = _ed_reference(a, b)
        D = np.zeros((len(a) + 1, len(b) + 1))
        D[0, :] = np.arange(len(b) + 1)
        D[:, 0] = np.arange(len(a) + 1)
        sub = (np.frombuffer(a.encode(), np.uint8)[:, None]
               != np.frombuffer(b.encode(), np.uint8)[None, :]).astype(float)
        edit_distance_region(D, sub, range(len(a)), range(len(b)))
        assert np.array_equal(D, ref)
        assert D[-1, -1] == 3

    def test_region_by_region_equals_whole(self):
        rng = np.random.default_rng(0)
        a = "".join(rng.choice(list("AB"), 9))
        b = "".join(rng.choice(list("AB"), 12))
        ref = _ed_reference(a, b)
        D = np.zeros((10, 13))
        D[0, :] = np.arange(13)
        D[:, 0] = np.arange(10)
        sub = (np.frombuffer(a.encode(), np.uint8)[:, None]
               != np.frombuffer(b.encode(), np.uint8)[None, :]).astype(float)
        # Sweep 3x4 sub-regions in wavefront order.
        for bi in range(3):
            for bj in range(3):
                edit_distance_region(D, sub, range(bi * 3, bi * 3 + 3), range(bj * 4, bj * 4 + 4))
        assert np.array_equal(D, ref)


class TestLCSRegion:
    def test_known_case(self):
        a, b = "ABCBDAB", "BDCABA"
        D = np.zeros((len(a) + 1, len(b) + 1))
        match = (np.frombuffer(a.encode(), np.uint8)[:, None]
                 == np.frombuffer(b.encode(), np.uint8)[None, :])
        lcs_region(D, match, range(len(a)), range(len(b)))
        assert D[-1, -1] == 4  # "BCBA"


class TestNussinovRegion:
    def _brute(self, pairs_ok, n, min_sep=1):
        import functools

        @functools.lru_cache(maxsize=None)
        def best(i, j):
            if j <= i:
                return 0
            cands = [best(i + 1, j), best(i, j - 1)]
            if j - i > min_sep and pairs_ok[i][j]:
                cands.append(best(i + 1, j - 1) + 1)
            for k in range(i + 1, j):
                cands.append(best(i, k) + best(k + 1, j))
            return max(cands)

        return best(0, n - 1)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_whole_window_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = 12
        can = rng.random((n, n)) < 0.4
        can = np.triu(can, 1)
        W = np.zeros((n, n))
        nussinov_region(W, can, 0, range(n), range(n), min_sep=1)
        brute = self._brute(tuple(map(tuple, can)), n)
        assert W[0, n - 1] == brute

    def test_min_sep_zero_allows_adjacent(self):
        can = np.ones((2, 2), dtype=bool)
        W = np.zeros((2, 2))
        nussinov_region(W, can, 0, range(2), range(2), min_sep=0)
        assert W[0, 1] == 1

    def test_min_sep_blocks_adjacent(self):
        can = np.ones((2, 2), dtype=bool)
        W = np.zeros((2, 2))
        nussinov_region(W, can, 0, range(2), range(2), min_sep=1)
        assert W[0, 1] == 0

    def test_offset_window(self):
        """Computing cells (3..5) of a larger problem via a shifted window."""
        n = 6
        can = np.zeros((n, n), dtype=bool)
        can[3, 5] = True
        W = np.zeros((3, 3))
        nussinov_region(W, can[3:, 3:], 3, range(3, 6), range(3, 6))
        assert W[0, 2] == 1  # F[3, 5]


class TestMatrixChainRegion:
    def test_cormen_example(self):
        # CLRS 15.2: dims (30,35,15,5,10,20,25) -> optimal cost 15125.
        dims = np.array([30, 35, 15, 5, 10, 20, 25], dtype=float)
        n = 6
        W = np.zeros((n, n))
        matrix_chain_region(W, dims, 0, range(n), range(n))
        assert W[0, n - 1] == 15125

    def test_two_matrices(self):
        dims = np.array([2, 3, 4], dtype=float)
        W = np.zeros((2, 2))
        matrix_chain_region(W, dims, 0, range(2), range(2))
        assert W[0, 1] == 24
