"""Unit tests for the five DPProblem implementations.

Each algorithm is checked three ways: blocked execution equals the
independent serial reference; the master-side extract/apply data flow is
exactly sufficient (a slave sees only shipped inputs); and the final
traceback produces a *valid witness*, not just the right number.
"""

import numpy as np
import pytest

from repro.algorithms import (
    EditDistance,
    LongestCommonSubsequence,
    MatrixChainOrder,
    Nussinov,
    SmithWatermanGG,
)
from repro.dag.library import RowColPrefixPattern, TriangularPattern, WavefrontPattern
from repro.dag.partition import partition_pattern


def run_blocked(problem, proc, thread):
    """Drain the partitioned problem serially through the evaluator API."""
    part = partition_pattern(problem.pattern(), proc)
    state = problem.make_state()
    for bid in part.abstract.topological_order():
        inputs = problem.extract_inputs(state, part, bid)
        ev = problem.evaluator(part, bid, inputs)
        outputs = ev.run_serial(part.sub_partition(bid, thread))
        problem.apply_result(state, part, bid, outputs)
    return problem.finalize(state), state


class TestEditDistance:
    def test_blocked_equals_reference(self, edit_distance_small):
        res, _ = run_blocked(edit_distance_small, 10, 3)
        assert res.distance == edit_distance_small.reference()

    def test_known_case(self):
        ed = EditDistance("kitten", "sitting")
        res, _ = run_blocked(ed, 3, 2)
        assert res.distance == 3

    def test_identical_strings(self):
        ed = EditDistance("ACGTACGT", "ACGTACGT")
        res, _ = run_blocked(ed, 3, 1)
        assert res.distance == 0
        assert all(op == "match" for op, _, _ in res.script)

    def test_script_is_valid_witness(self, edit_distance_small):
        res, _ = run_blocked(edit_distance_small, 8, 4)
        assert res.n_edits() == res.distance
        # Replaying the script on `a` must yield `b`.
        a, b = edit_distance_small.a, edit_distance_small.b
        out = []
        for op, i, j in res.script:
            if op in ("match", "substitute"):
                out.append(b[j] if op == "substitute" else a[i])
            elif op == "insert":
                out.append(b[j])
            # delete contributes nothing
        assert "".join(out) == b

    def test_pattern_and_defaults(self):
        ed = EditDistance("AAAA", "CCC")
        assert isinstance(ed.pattern(), WavefrontPattern)
        assert ed.pattern().shape == (4, 3)
        proc, thread = ed.default_partition_sizes()
        assert proc >= 1 and thread >= 1

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            EditDistance("", "ACGT")


class TestLCS:
    def test_blocked_equals_reference(self, lcs_small):
        res, _ = run_blocked(lcs_small, 7, 2)
        assert res.length == lcs_small.reference()

    def test_subsequence_is_valid_witness(self, lcs_small):
        res, _ = run_blocked(lcs_small, 6, 3)

        def is_subseq(s, t):
            it = iter(t)
            return all(c in it for c in s)

        assert len(res.subsequence) == res.length
        assert is_subseq(res.subsequence, lcs_small.a)
        assert is_subseq(res.subsequence, lcs_small.b)

    def test_disjoint_alphabets(self):
        res, _ = run_blocked(LongestCommonSubsequence("AAAA", "CCCC"), 2, 1)
        assert res.length == 0
        assert res.subsequence == ""


class TestSWGG:
    def test_blocked_equals_reference_matrix(self, swgg_small):
        _, state = run_blocked(swgg_small, 8, 3)
        assert np.allclose(state["H"], swgg_small.reference_matrix())

    def test_score_nonnegative_and_max(self, swgg_small):
        res, state = run_blocked(swgg_small, 8, 3)
        assert res.score == np.max(state["H"]) >= 0

    def test_alignment_scores_back_to_score(self, swgg_small):
        """Re-scoring the reported alignment reproduces the reported score."""
        res, _ = run_blocked(swgg_small, 8, 3)
        score = 0.0
        gap_a = gap_b = 0

        def flush(d):
            return swgg_small.gap[d] if d else 0.0

        for x, y in zip(res.aligned_a, res.aligned_b):
            if x == "-":
                gap_a += 1
                continue
            if y == "-":
                gap_b += 1
                continue
            score -= flush(gap_a) + flush(gap_b)
            gap_a = gap_b = 0
            score += swgg_small.match if x == y else swgg_small.mismatch
        score -= flush(gap_a) + flush(gap_b)
        assert np.isclose(score, res.score)

    def test_general_gap_function_is_honored(self):
        """A concave custom gap must beat the affine default where long
        gaps are cheap."""
        a, b = "ACGTACGTAC", "ACGTTTTTTTACGTAC"
        affine = SmithWatermanGG(a, b)
        cheap_long = SmithWatermanGG(a, b, gap_fn=lambda d: 1.0 + np.log1p(d))
        res_a, _ = run_blocked(affine, 5, 2)
        res_c, _ = run_blocked(cheap_long, 5, 2)
        assert res_c.score >= res_a.score

    def test_gap_fn_shape_validated(self):
        with pytest.raises(ValueError, match="elementwise"):
            SmithWatermanGG("ACG", "ACG", gap_fn=lambda d: np.zeros(3))

    def test_pattern_type(self, swgg_small):
        assert isinstance(swgg_small.pattern(), RowColPrefixPattern)


class TestNussinov:
    def test_blocked_equals_reference(self, nussinov_small):
        res, _ = run_blocked(nussinov_small, 7, 3)
        assert res.score == nussinov_small.reference()

    def test_structure_is_valid(self, nussinov_small):
        res, _ = run_blocked(nussinov_small, 7, 3)
        assert len(res.pairs) == res.score
        used = set()
        for i, j in res.pairs:
            assert nussinov_small.can_pair(i, j)
            assert i < j
            assert not {i, j} & used
            used |= {i, j}
        # Non-crossing: for any two pairs, nested or disjoint.
        for (i1, j1) in res.pairs:
            for (i2, j2) in res.pairs:
                if i1 < i2 < j1:
                    assert j2 < j1

    def test_dot_bracket_consistent(self, nussinov_small):
        res, _ = run_blocked(nussinov_small, 7, 3)
        assert len(res.dot_bracket) == nussinov_small.n
        assert res.dot_bracket.count("(") == res.score
        assert res.dot_bracket.count(")") == res.score

    def test_min_sep_enforced(self):
        # AU can pair, but only when separated by more than min_sep bases.
        res5, _ = run_blocked(Nussinov("AAAUUU", min_sep=5), 3, 1)
        assert res5.score == 0
        # min_sep=1 blocks the innermost (2,3) pair, leaving two pairs.
        res1, _ = run_blocked(Nussinov("AAAUUU", min_sep=1), 3, 1)
        assert res1.score == 2
        res0, _ = run_blocked(Nussinov("AAAUUU", min_sep=0), 3, 1)
        assert res0.score == 3

    def test_unpairable_sequence(self):
        res, _ = run_blocked(Nussinov("AAAAAA"), 3, 1)
        assert res.score == 0
        assert res.dot_bracket == "......"

    def test_pattern_type(self, nussinov_small):
        p = nussinov_small.pattern()
        assert isinstance(p, TriangularPattern)
        assert p.n == nussinov_small.n

    def test_invalid_min_sep(self):
        with pytest.raises(ValueError):
            Nussinov("ACGU", min_sep=-1)


class TestMatrixChain:
    def test_blocked_equals_reference(self, matrix_chain_small):
        res, _ = run_blocked(matrix_chain_small, 6, 2)
        assert np.isclose(res.cost, matrix_chain_small.reference())

    def test_cormen_example(self):
        mc = MatrixChainOrder([30, 35, 15, 5, 10, 20, 25])
        res, _ = run_blocked(mc, 3, 1)
        assert res.cost == 15125
        assert res.parenthesization == "((A0(A1A2))((A3A4)A5))"

    def test_single_matrix(self):
        res, _ = run_blocked(MatrixChainOrder([4, 7]), 1, 1)
        assert res.cost == 0
        assert res.parenthesization == "A0"

    def test_validation(self):
        with pytest.raises(ValueError):
            MatrixChainOrder([5])
        with pytest.raises(ValueError):
            MatrixChainOrder([5, 0, 3])


class TestCostModel:
    def test_total_flops_additive(self, swgg_small):
        part = partition_pattern(swgg_small.pattern(), 8)
        assert swgg_small.total_flops(part) == pytest.approx(
            sum(swgg_small.block_flops(part, b) for b in part.block_ids())
        )

    def test_swgg_flops_grow_with_position(self, swgg_small):
        part = partition_pattern(swgg_small.pattern(), 8)
        assert swgg_small.block_flops(part, (0, 0)) < swgg_small.block_flops(part, (2, 2))

    def test_triangular_flops_grow_with_span(self, nussinov_small):
        part = partition_pattern(nussinov_small.pattern(), 8)
        assert nussinov_small.block_flops(part, (0, 1)) < nussinov_small.block_flops(part, (0, 4))

    def test_whole_problem_region_matches_total(self, nussinov_small):
        part = partition_pattern(nussinov_small.pattern(), 8)
        whole = nussinov_small.region_flops(
            range(nussinov_small.n), range(nussinov_small.n), diagonal=True
        )
        assert whole == pytest.approx(nussinov_small.total_flops(part), rel=0.02)

    def test_input_bytes_match_extracted_arrays(self, swgg_small):
        part = partition_pattern(swgg_small.pattern(), 8)
        state = swgg_small.make_state()
        for bid in [(0, 0), (1, 2), (2, 1)]:
            measured = sum(
                v.nbytes for v in swgg_small.extract_inputs(state, part, bid).values()
            )
            assert swgg_small.input_bytes(part, bid) == measured

    def test_triangular_input_bytes_match(self, nussinov_small):
        part = partition_pattern(nussinov_small.pattern(), 8)
        state = nussinov_small.make_state()
        for bid in part.block_ids():
            measured = sum(
                v.nbytes for v in nussinov_small.extract_inputs(state, part, bid).values()
            )
            assert nussinov_small.input_bytes(part, bid) == measured

    def test_output_bytes(self, nussinov_small):
        part = partition_pattern(nussinov_small.pattern(), 8)
        for bid in part.block_ids():
            assert nussinov_small.output_bytes(part, bid) == 8 * part.cell_count(bid)

    def test_cost_class_groups_identical_blocks(self, swgg_small):
        part = partition_pattern(swgg_small.pattern(), 8)
        # Blocks on the same anti-diagonal with same shape share the class.
        c1 = swgg_small.block_cost_class(part, (0, 1))
        c2 = swgg_small.block_cost_class(part, (1, 0))
        assert c1 == c2
        assert swgg_small.block_cost_class(part, (0, 0)) != c1
