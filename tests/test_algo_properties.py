"""Property-based tests: blocked execution == serial reference for random
instances under random partitions — the core correctness contract that lets
the runtime schedule blocks in any legal order.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    EditDistance,
    LongestCommonSubsequence,
    MatrixChainOrder,
    Nussinov,
    SmithWatermanGG,
)
from repro.dag.partition import partition_pattern

dna = st.text(alphabet="ACGT", min_size=1, max_size=24)
rna = st.text(alphabet="ACGU", min_size=2, max_size=20)


def run_blocked(problem, proc, thread):
    part = partition_pattern(problem.pattern(), proc)
    state = problem.make_state()
    for bid in part.abstract.topological_order():
        inputs = problem.extract_inputs(state, part, bid)
        ev = problem.evaluator(part, bid, inputs)
        outputs = ev.run_serial(part.sub_partition(bid, thread))
        problem.apply_result(state, part, bid, outputs)
    return problem.finalize(state), state


@given(a=dna, b=dna, proc=st.integers(1, 9), thread=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_edit_distance_blocked_equals_reference(a, b, proc, thread):
    thread = min(thread, proc)
    ed = EditDistance(a, b)
    res, _ = run_blocked(ed, proc, thread)
    assert res.distance == ed.reference()


@given(a=dna, b=dna, proc=st.integers(1, 9), thread=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_lcs_blocked_equals_reference(a, b, proc, thread):
    thread = min(thread, proc)
    lcs = LongestCommonSubsequence(a, b)
    res, _ = run_blocked(lcs, proc, thread)
    assert res.length == lcs.reference()


@given(
    a=st.text(alphabet="ACGT", min_size=1, max_size=14),
    b=st.text(alphabet="ACGT", min_size=1, max_size=14),
    proc=st.integers(1, 6),
)
@settings(max_examples=25, deadline=None)
def test_swgg_blocked_equals_reference_matrix(a, b, proc):
    sw = SmithWatermanGG(a, b)
    _, state = run_blocked(sw, proc, max(1, proc // 2))
    assert np.allclose(state["H"], sw.reference_matrix())


@given(seq=rna, proc=st.integers(1, 7), min_sep=st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_nussinov_blocked_equals_reference(seq, proc, min_sep):
    nu = Nussinov(seq, min_sep=min_sep)
    res, _ = run_blocked(nu, proc, max(1, proc // 2))
    assert res.score == nu.reference()


@given(
    dims=st.lists(st.integers(1, 20), min_size=2, max_size=12),
    proc=st.integers(1, 5),
)
@settings(max_examples=30, deadline=None)
def test_matrix_chain_blocked_equals_reference(dims, proc):
    mc = MatrixChainOrder(dims)
    res, _ = run_blocked(mc, proc, max(1, proc // 2))
    assert np.isclose(res.cost, mc.reference())


@given(seq=rna, proc=st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_nussinov_traceback_always_valid(seq, proc):
    """The recovered structure is well-formed for arbitrary instances."""
    nu = Nussinov(seq)
    res, _ = run_blocked(nu, proc, 1)
    used = set()
    for i, j in res.pairs:
        assert nu.can_pair(i, j)
        assert not {i, j} & used
        used |= {i, j}
    assert len(res.pairs) == res.score


@given(a=dna, b=dna)
@settings(max_examples=30, deadline=None)
def test_edit_distance_metric_properties(a, b):
    """Identity and symmetry of the distance (metric sanity)."""
    assert EditDistance(a, a).reference() == 0
    assert EditDistance(a, b).reference() == EditDistance(b, a).reference()
