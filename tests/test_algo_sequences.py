"""Unit tests for synthetic sequence generation and scoring helpers."""

import numpy as np
import pytest

from repro.algorithms.sequences import (
    DNA_ALPHABET,
    RNA_ALPHABET,
    encode,
    encode_pair,
    match_score_matrix,
    pair_matrix,
    random_dna,
    random_protein,
    random_rna,
    random_sequence,
)


class TestGenerators:
    def test_length_and_alphabet(self):
        s = random_dna(500, seed=1)
        assert len(s) == 500
        assert set(s) <= set(DNA_ALPHABET)

    def test_seed_reproducibility(self):
        assert random_rna(100, seed=42) == random_rna(100, seed=42)
        assert random_rna(100, seed=42) != random_rna(100, seed=43)

    def test_zero_length(self):
        assert random_dna(0, seed=1) == ""

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            random_sequence(-1, "AC")

    def test_protein_alphabet(self):
        s = random_protein(200, seed=0)
        assert len(set(s)) > 4  # uses more than a nucleotide alphabet

    def test_roughly_uniform(self):
        s = random_dna(40_000, seed=7)
        counts = {c: s.count(c) for c in DNA_ALPHABET}
        for c, n in counts.items():
            assert 0.22 < n / 40_000 < 0.28, (c, n)


class TestEncoding:
    def test_encode_round_trip(self):
        s = "ACGUACGU"
        codes = encode(s, RNA_ALPHABET)
        assert codes.dtype == np.int8
        assert "".join(RNA_ALPHABET[c] for c in codes) == s

    def test_encode_rejects_foreign_chars(self):
        with pytest.raises(ValueError, match="not in alphabet"):
            encode("ACGT", RNA_ALPHABET)  # T is DNA, not RNA

    def test_encode_pair(self):
        a, b = encode_pair("ACG", "TGC")
        assert a.tolist() == [0, 1, 2]
        assert b.tolist() == [3, 2, 1]


class TestScoring:
    def test_pair_matrix_watson_crick_and_wobble(self):
        P = pair_matrix()
        idx = {c: i for i, c in enumerate(RNA_ALPHABET)}
        assert P[idx["A"], idx["U"]] and P[idx["U"], idx["A"]]
        assert P[idx["G"], idx["C"]] and P[idx["C"], idx["G"]]
        assert P[idx["G"], idx["U"]] and P[idx["U"], idx["G"]]
        assert not P[idx["A"], idx["G"]]
        assert not P[idx["A"], idx["A"]]

    def test_pair_matrix_symmetric(self):
        P = pair_matrix()
        assert np.array_equal(P, P.T)

    def test_match_score_matrix(self):
        M = match_score_matrix("ACGT", match=5.0, mismatch=-2.0)
        assert M[0, 0] == 5.0
        assert M[0, 1] == -2.0
        assert M.shape == (4, 4)
