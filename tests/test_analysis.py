"""Unit tests for reports, tables, and figure-series helpers."""

import pytest

from repro.analysis.figures import Series, crossover_points, speedup_series
from repro.analysis.report import RunReport, _human_bytes
from repro.analysis.tables import ascii_table, format_series


def make_report(**kw):
    base = dict(
        backend="simulated",
        scheduler="dynamic",
        algorithm="swgg",
        nodes=4,
        threads_per_node=5,
        makespan=10.0,
        wall_time=0.1,
        n_tasks=100,
    )
    base.update(kw)
    return RunReport(**base)


class TestRunReport:
    def test_speedup(self):
        assert make_report().speedup_vs(100.0) == 10.0

    def test_speedup_needs_positive_makespan(self):
        with pytest.raises(ValueError):
            make_report(makespan=0.0).speedup_vs(1.0)

    def test_summary_mentions_key_facts(self):
        text = make_report(faults_recovered=2, utilization=0.5).summary()
        assert "swgg" in text
        assert "2 redistributed" in text
        assert "50.0%" in text

    def test_summary_omits_empty_sections(self):
        text = make_report().summary()
        assert "faults" not in text
        assert "utilization" not in text

    def test_human_bytes(self):
        assert _human_bytes(512) == "512.0 B"
        assert _human_bytes(2048) == "2.0 KiB"
        assert _human_bytes(3 * 1024**2) == "3.0 MiB"


class TestAsciiTable:
    def test_renders_aligned(self):
        out = ascii_table(["name", "value"], [["x", 1], ["longer", 2.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines))) == 1  # all rows same width

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        out = ascii_table(["v"], [[3.14159265]])
        assert "3.142" in out

    def test_format_series(self):
        out = format_series("t", [1, 2], [0.5, 0.25])
        assert out == "t: (1, 0.5) (2, 0.25)"


class TestSeries:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            Series("x", (1, 2), (1,))

    def test_from_points(self):
        s = Series.from_points("x", [(1, 10.0), (2, 5.0)])
        assert s.xs == (1, 2)
        assert s.min_y() == 5.0
        assert s.max_y() == 10.0

    def test_ratio_over_common_x(self):
        a = Series("a", (1, 2, 3), (2.0, 4.0, 8.0))
        b = Series("b", (2, 3, 4), (2.0, 2.0, 2.0))
        r = a.ratio_to(b)
        assert r.xs == (2, 3)
        assert r.ys == (2.0, 4.0)
        assert r.label == "a/b"

    def test_speedup_series(self):
        s = Series("elapsed", (1, 2), (10.0, 5.0))
        sp = speedup_series(s, baseline=20.0)
        assert sp.ys == (2.0, 4.0)

    def test_crossover_points(self):
        a = Series("a", (1, 2, 3, 4), (1.0, 2.0, 3.0, 4.0))
        b = Series("b", (1, 2, 3, 4), (4.0, 3.0, 2.0, 1.0))
        assert crossover_points(a, b) == [3]

    def test_no_crossover(self):
        a = Series("a", (1, 2), (1.0, 1.0))
        b = Series("b", (1, 2), (2.0, 2.0))
        assert crossover_points(a, b) == []

    def test_render(self):
        assert Series("s", (1,), (2.0,)).render() == "s: (1, 2)"
