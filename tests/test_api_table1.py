"""Table I reproduction: the user-API data structures of the DAG DDM.

The paper's only table is an API specification; reproducing it means the
live Python structures expose every field (or a documented equivalent).
These tests pin that, and ``benchmarks/bench_table1_api.py`` prints the
regenerated table.
"""

import pytest

from repro.dag.library import TriangularPattern, WavefrontPattern
from repro.dag.pattern import DAGVertex
from repro.runtime.api import (
    DAG_ELEMENT_FIELDS,
    DAG_PATTERN_FIELDS,
    DagPatternSpec,
    table1_rows,
)
from repro.utils.errors import ConfigError


class TestTable1Coverage:
    def test_every_field_implemented(self):
        rows = table1_rows()
        missing = [name for name, _, _, ok in rows if not ok]
        assert missing == [], f"Table I fields without an implementation: {missing}"

    def test_row_count_matches_paper(self):
        assert len(table1_rows()) == len(DAG_ELEMENT_FIELDS) + len(DAG_PATTERN_FIELDS) == 13

    def test_dag_element_fields_exist_on_vertex(self):
        fields = DAGVertex.__dataclass_fields__
        for name, _, _ in DAG_ELEMENT_FIELDS:
            assert name in fields, name

    def test_vertex_degrees_consistent(self):
        v = WavefrontPattern(3, 3).element((1, 1))
        assert v.pre_cnt == len(v.data_prefix_id) - 1  # data adds the NW cell
        assert v.pos_cnt == len(v.posfix_id)


class TestDagPatternSpec:
    def test_build_from_library_type(self):
        spec = DagPatternSpec(
            pattern_type="wavefront",
            dag_size=(40, 40),
            process_partition_size=10,
            thread_partition_size=5,
        )
        model = spec.build()
        assert model.dag_size == (40, 40)
        assert model.rect_size == (4, 4)

    def test_build_triangular_uses_single_dimension(self):
        spec = DagPatternSpec(pattern_type="triangular", dag_size=(30, 30),
                              process_partition_size=10, thread_partition_size=5)
        model = spec.build()
        assert isinstance(model.pattern, TriangularPattern)
        assert model.pattern.n == 30

    def test_build_from_explicit_pattern(self):
        spec = DagPatternSpec(
            pattern=WavefrontPattern(20, 30),
            process_partition_size=(10, 15),
            thread_partition_size=(5, 5),
        )
        assert spec.build().rect_size == (2, 2)

    def test_custom_data_mapping_threads_through(self):
        spec = DagPatternSpec(
            pattern=WavefrontPattern(20, 20),
            process_partition_size=10,
            thread_partition_size=5,
            data_mapping_function=lambda bid: ("custom", bid),
        )
        assert spec.build().data_mapping((1, 1)) == ("custom", (1, 1))

    def test_missing_pattern_info_rejected(self):
        with pytest.raises(ConfigError):
            DagPatternSpec(pattern_type="wavefront").build()
        with pytest.raises(ConfigError):
            DagPatternSpec(dag_size=(10, 10)).build()

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigError, match="unknown pattern type"):
            DagPatternSpec(pattern_type="hexagonal", dag_size=(10, 10)).build()
