"""The committed performance baseline (BENCH_BASELINE.json)."""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_BASELINE.json"


@pytest.fixture(autouse=True)
def _repo_on_path():
    sys.path.insert(0, str(REPO_ROOT))
    yield
    sys.path.remove(str(REPO_ROOT))


def test_baseline_file_is_committed_and_well_formed():
    doc = json.loads(BASELINE.read_text())
    assert doc["schema"] == "repro-bench-baseline-1"
    assert doc["entries"], "baseline must have at least one recorded entry"
    for entry in doc["entries"]:
        assert entry["label"]
        for backend in ("serial", "threads", "processes", "simulated"):
            m = entry["backends"][backend]
            assert m["wall_time_s"] > 0
            assert m["makespan_s"] > 0
            assert m["messages"] >= 0
            assert m["bytes_to_slaves"] >= 0
            assert m["bytes_to_master"] >= 0


def test_serial_backend_sends_nothing():
    doc = json.loads(BASELINE.read_text())
    serial = doc["entries"][-1]["backends"]["serial"]
    assert serial["messages"] == 0
    assert serial["bytes_to_slaves"] == 0
    assert serial["bytes_to_master"] == 0


def test_simulated_wire_counters_reproduce():
    """The simulator is deterministic: the committed wire counters must
    reproduce exactly, or the protocol's on-wire behaviour changed and
    the baseline needs a new entry."""
    from benchmarks.bench_baseline import measure_backend

    doc = json.loads(BASELINE.read_text())
    recorded = doc["entries"][-1]["backends"]["simulated"]
    current = measure_backend("simulated")
    for key in ("messages", "bytes_to_slaves", "bytes_to_master"):
        assert current[key] == recorded[key], (
            f"simulated {key} drifted from the committed baseline: "
            f"{recorded[key]} -> {current[key]}; if intentional, record a "
            "new entry with benchmarks/bench_baseline.py --write"
        )


def test_workload_is_pinned():
    from benchmarks.bench_baseline import STANDARD

    doc = json.loads(BASELINE.read_text())
    assert doc["workload"] == STANDARD
