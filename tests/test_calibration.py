"""Tests for simulator calibration against real kernel timings."""

import pytest

from repro import RunConfig
from repro.algorithms import EditDistance, Nussinov
from repro.analysis.calibration import (
    CalibrationSample,
    calibrate_node,
    calibration_report,
    fit_rate,
    measure_blocks,
)
from repro.cluster.machine import NodeSpec
from repro.utils.errors import ConfigError


class TestSamples:
    def test_rate(self):
        s = CalibrationSample(bid=(0, 0), flops=100.0, seconds=0.5)
        assert s.rate == 200.0

    def test_fit_rate_is_total_ratio(self):
        samples = [
            CalibrationSample((0, 0), 100.0, 1.0),
            CalibrationSample((1, 1), 300.0, 1.0),
        ]
        assert fit_rate(samples) == 200.0

    def test_fit_rate_validates(self):
        with pytest.raises(ConfigError):
            fit_rate([])


class TestMeasureBlocks:
    def test_default_picks_spread(self):
        ed = EditDistance.random(60, 60, seed=1)
        samples = measure_blocks(ed, 20, 10)
        assert len(samples) == 3
        assert samples[0].bid == (0, 0)
        assert all(s.seconds > 0 for s in samples)
        assert all(s.flops > 0 for s in samples)

    def test_explicit_blocks(self):
        ed = EditDistance.random(40, 40, seed=2)
        samples = measure_blocks(ed, 20, 10, block_ids=[(1, 1)])
        assert [s.bid for s in samples] == [(1, 1)]

    def test_repeats_take_best(self):
        ed = EditDistance.random(30, 30, seed=3)
        one = measure_blocks(ed, 15, 5, block_ids=[(0, 0)], repeats=1)[0]
        many = measure_blocks(ed, 15, 5, block_ids=[(0, 0)], repeats=3)[0]
        assert many.seconds <= one.seconds * 3  # sanity: same order of magnitude

    def test_rejects_bad_repeats(self):
        ed = EditDistance.random(20, 20, seed=4)
        with pytest.raises(ConfigError):
            measure_blocks(ed, 10, 5, repeats=0)


class TestCalibrateNode:
    def test_produces_positive_rate(self):
        ed = EditDistance.random(80, 80, seed=5)
        spec, samples = calibrate_node(ed, 20, 10)
        assert spec.flops_per_second > 0
        assert spec.threads == 1
        assert len(samples) == 3

    def test_base_spec_fields_kept(self):
        ed = EditDistance.random(40, 40, seed=6)
        base = NodeSpec(threads=4, contention=0.07)
        spec, _ = calibrate_node(ed, 20, 10, base=base)
        assert spec.threads == 4
        assert spec.contention == 0.07

    def test_calibrated_sim_tracks_real_serial_time(self):
        """A simulated 1-thread run with the calibrated rate lands within
        an order of magnitude of the real serial run."""
        import time

        from repro.backends.serial import run_serial
        from repro.backends.simulated import run_simulated
        from repro.cluster.topology import ClusterSpec

        ed = EditDistance.random(150, 150, seed=7)
        spec, _ = calibrate_node(ed, 50, 10, repeats=2)
        _, real = run_serial(ed, RunConfig(nodes=1, backend="serial",
                                           process_partition=50, thread_partition=10))
        cluster = ClusterSpec(compute_nodes=(spec,), master_overhead=0.0, slave_overhead=0.0)
        cfg = RunConfig(nodes=2, threads_per_node=1, backend="simulated",
                        cluster=cluster, process_partition=50, thread_partition=10)
        _, sim = run_simulated(ed, cfg)
        ratio = sim.makespan / real.makespan
        assert 0.2 < ratio < 5.0, f"calibrated sim off by {ratio:.1f}x"
        del time

    def test_report_renders(self):
        ed = EditDistance.random(40, 40, seed=8)
        _, samples = calibrate_node(ed, 20, 10)
        text = calibration_report(samples)
        assert "fitted rate" in text
        assert "(0, 0)" in text

    def test_position_dependent_costs_probed(self):
        """Nussinov's spread across diagonal offsets shows in the samples."""
        nu = Nussinov.random(120, seed=9)
        samples = measure_blocks(nu, 30, 10)
        assert len({s.bid for s in samples}) == 3
