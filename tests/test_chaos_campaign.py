"""Tests for the chaos campaign runner and the fault-trace invariants.

The invariant checker is exercised on synthetic event streams (every
violation class, plus the waivers); the campaign machinery on its spec
validation, config derivation, and a small live simulated campaign.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.chaos.campaign import (
    CAMPAIGN_BACKENDS,
    CampaignResult,
    CampaignSpec,
    RunOutcome,
    _states_equal,
    chaos_config,
    run_campaign,
)
from repro.check.chaos_check import blacklisted_workers, check_fault_invariants
from repro.check.diagnostics import COMMIT_AFTER_BLACKLIST, UNHANDLED_FAULT
from repro.utils.errors import ChaosError


@dataclass
class Ev:
    """Minimal stand-in for an ObsEvent in synthetic streams."""

    seq: int
    kind: str
    task_id: object = None
    epoch: int = -1
    worker: int = -1
    scope: str = "task"


class TestFaultInvariants:
    def test_clean_stream_passes(self):
        events = [
            Ev(0, "assign", (0, 0), 0, worker=1),
            Ev(1, "commit", (0, 0), 0),
            Ev(2, "assign", (1, 0), 0, worker=2),
            Ev(3, "commit", (1, 0), 0),
        ]
        report = check_fault_invariants(events)
        assert report.ok and report.checked >= 2

    def test_commit_after_blacklist_detected_via_assign_map(self):
        # Master-side commits carry worker == -1; attribution must come
        # from the matching assign record.
        events = [
            Ev(0, "assign", (0, 0), 0, worker=1),
            Ev(1, "blacklist", worker=1),
            Ev(2, "commit", (0, 0), 0, worker=-1),
        ]
        report = check_fault_invariants(events)
        assert report.has(COMMIT_AFTER_BLACKLIST)

    def test_commit_after_blacklist_detected_with_stamped_worker(self):
        # Simulator-style streams stamp the worker on the commit itself.
        events = [
            Ev(0, "blacklist", worker=2),
            Ev(1, "commit", (3, 3), 0, worker=2),
        ]
        assert check_fault_invariants(events).has(COMMIT_AFTER_BLACKLIST)

    def test_commit_before_blacklist_is_fine(self):
        events = [
            Ev(0, "assign", (0, 0), 0, worker=1),
            Ev(1, "commit", (0, 0), 0),
            Ev(2, "blacklist", worker=1),
        ]
        assert check_fault_invariants(events).ok

    def test_commit_from_other_worker_after_blacklist_is_fine(self):
        events = [
            Ev(0, "assign", (0, 0), 0, worker=1),
            Ev(1, "blacklist", worker=2),
            Ev(2, "commit", (0, 0), 0),
        ]
        assert check_fault_invariants(events).ok

    @pytest.mark.parametrize("fault_kind", ["redistribute", "speculate"])
    def test_fault_followed_by_reassign_is_fine(self, fault_kind):
        events = [
            Ev(0, "assign", (0, 0), 0, worker=1),
            Ev(1, fault_kind, (0, 0), 0),
            Ev(2, "assign", (0, 0), 1, worker=2),
            Ev(3, "commit", (0, 0), 1),
        ]
        assert check_fault_invariants(events).ok

    @pytest.mark.parametrize("fault_kind", ["redistribute", "speculate"])
    def test_fault_without_reassign_is_a_violation(self, fault_kind):
        events = [
            Ev(0, "assign", (0, 0), 0, worker=1),
            Ev(1, fault_kind, (0, 0), 0),
        ]
        report = check_fault_invariants(events)
        assert report.has(UNHANDLED_FAULT)

    def test_abort_waives_trailing_faults(self):
        events = [
            Ev(0, "assign", (0, 0), 0, worker=1),
            Ev(1, "redistribute", (0, 0), 0),
        ]
        assert check_fault_invariants(events, aborted=True).ok

    def test_earlier_assign_does_not_satisfy_reassign(self):
        # The re-assign must come *after* the fault.
        events = [
            Ev(0, "assign", (0, 0), 0, worker=1),
            Ev(5, "redistribute", (0, 0), 0),
        ]
        assert check_fault_invariants(events).has(UNHANDLED_FAULT)

    def test_out_of_order_streams_are_sorted_by_seq(self):
        events = [
            Ev(2, "commit", (0, 0), 0, worker=-1),
            Ev(0, "assign", (0, 0), 0, worker=1),
            Ev(1, "blacklist", worker=1),
        ]
        assert check_fault_invariants(events).has(COMMIT_AFTER_BLACKLIST)

    def test_non_task_scope_is_ignored(self):
        events = [
            Ev(0, "blacklist", worker=1, scope="message"),
            Ev(1, "assign", (0, 0), 0, worker=1),
            Ev(2, "commit", (0, 0), 0),
        ]
        assert check_fault_invariants(events).ok

    def test_blacklisted_workers_helper(self):
        events = [Ev(0, "blacklist", worker=3), Ev(1, "blacklist", worker=5)]
        assert blacklisted_workers(events) == {3, 5}


class TestCampaignSpec:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ChaosError):
            CampaignSpec(backends=("serial",))

    def test_zero_seeds_rejected(self):
        with pytest.raises(ChaosError):
            CampaignSpec(seeds=0)

    def test_all_campaign_backends_accepted(self):
        spec = CampaignSpec(backends=CAMPAIGN_BACKENDS)
        assert spec.backends == CAMPAIGN_BACKENDS


class TestChaosConfig:
    def test_plans_are_pure_functions_of_the_seed(self):
        spec = CampaignSpec()
        a = chaos_config("threads", 7, spec)
        b = chaos_config("threads", 7, spec)
        tasks = [(i, j) for i in range(4) for j in range(4)]
        assert [a.fault_plan.lookup(t, 0) for t in tasks] == [
            b.fault_plan.lookup(t, 0) for t in tasks
        ]
        for w in range(4):
            assert a.worker_fault_plan.death_point(w) == b.worker_fault_plan.death_point(w)

    def test_simulated_gets_sim_time_timeouts(self):
        spec = CampaignSpec()
        sim = chaos_config("simulated", 0, spec)
        real = chaos_config("threads", 0, spec)
        assert sim.backend == "simulated" and real.backend == "threads"
        assert real.task_timeout < sim.task_timeout
        assert sim.observing and real.observing

    def test_recovery_knobs_are_on(self):
        cfg = chaos_config("threads", 0, CampaignSpec())
        assert cfg.blacklist_threshold is not None
        assert cfg.retry_backoff > 0


class TestResultTypes:
    def test_acceptable_statuses(self):
        assert RunOutcome("threads", 0, "ok").acceptable
        assert RunOutcome("threads", 0, "aborted").acceptable
        for status in ("wrong-answer", "invariant-violation", "hang", "error"):
            assert not RunOutcome("threads", 0, status).acceptable

    def test_result_rollup_and_raise(self):
        spec = CampaignSpec(backends=("simulated",), seeds=2)
        good = CampaignResult(
            spec=spec,
            outcomes=(RunOutcome("simulated", 0, "ok"), RunOutcome("simulated", 1, "aborted")),
        )
        assert good.ok and good.failures == ()
        assert good.counts() == {"ok": 1, "aborted": 1}
        assert "invariant held" in good.summary()
        good.raise_if_failed()

        bad = CampaignResult(
            spec=spec,
            outcomes=(RunOutcome("simulated", 0, "hang", detail="deadline"),),
        )
        assert not bad.ok and len(bad.failures) == 1
        assert "INVARIANT VIOLATED" in bad.summary()
        with pytest.raises(ChaosError):
            bad.raise_if_failed()

    def test_states_equal(self):
        a = {"m": np.arange(6).reshape(2, 3)}
        assert _states_equal(a, {"m": np.arange(6).reshape(2, 3)}) is None
        diff = _states_equal(a, {"m": np.zeros((2, 3), dtype=int)})
        assert diff is not None and "m" in diff
        assert _states_equal(a, {"other": np.zeros(2)}) is not None


class TestLiveCampaign:
    def test_small_simulated_campaign_holds_the_invariant(self):
        spec = CampaignSpec(
            backends=("simulated",), seeds=3, size=32, nodes=3, run_timeout=30.0
        )
        seen = []
        result = run_campaign(spec, progress=seen.append)
        assert len(result.outcomes) == 3 and len(seen) == 3
        assert result.ok, result.summary()
        assert set(result.counts()) <= {"ok", "aborted"}
        # Fault plans are seeded: the same campaign classifies identically.
        again = run_campaign(spec)
        assert [o.status for o in again.outcomes] == [o.status for o in result.outcomes]
