"""Unit tests for ChaosChannel: message faults at the transport boundary.

Each fault kind is driven through a real in-process channel pair and
asserted on observable behaviour: what the far end receives, when, and
what the wrapper counted.
"""

import time

import pytest

from repro.chaos.channel import ChaosChannel
from repro.cluster.faults import MessageFaultPlan, MessageFaultRule
from repro.comm.messages import IdleSignal, TaskAssign
from repro.comm.transport import ChannelTimeout, channel_pair


def chaos_pair(*rules):
    """(wrapped master end, plain slave end) with the given fault rules."""
    a, b = channel_pair()
    return ChaosChannel(a, MessageFaultPlan(rules), endpoint_index=0), b


def assign(i=0):
    return TaskAssign(task_id=(i, 0), epoch=0, inputs={})


class TestPassthrough:
    def test_no_plan_delivers_everything(self):
        a, b = chaos_pair()
        a.send(assign())
        assert b.recv(timeout=1.0) == assign()
        b.send(IdleSignal(slave_id=1))
        assert a.recv(timeout=1.0) == IdleSignal(slave_id=1)
        assert a.faults_injected == 0

    def test_wrapper_counts_traffic_as_the_endpoint(self):
        a, b = chaos_pair()
        a.send(assign())
        b.recv(timeout=1.0)
        assert a.sent_messages == 1


class TestDrop:
    def test_send_side_drop_never_arrives(self):
        a, b = chaos_pair(MessageFaultRule("drop", direction="send", index=0))
        a.send(assign())
        with pytest.raises(ChannelTimeout):
            b.recv(timeout=0.05)
        assert a.dropped == 1 and a.faults_injected == 1

    def test_recv_side_drop_discards_then_delivers_next(self):
        a, b = chaos_pair(MessageFaultRule("drop", direction="recv", index=0))
        b.send(IdleSignal(slave_id=1))
        b.send(IdleSignal(slave_id=2))
        assert a.recv(timeout=1.0) == IdleSignal(slave_id=2)
        assert a.dropped == 1

    def test_only_matching_index_dropped(self):
        a, b = chaos_pair(MessageFaultRule("drop", direction="send", index=1))
        a.send(assign(0))
        a.send(assign(1))
        a.send(assign(2))
        assert b.recv(timeout=1.0) == assign(0)
        assert b.recv(timeout=1.0) == assign(2)
        assert a.dropped == 1


class TestCorrupt:
    def test_corrupt_is_a_detected_drop_with_its_own_counter(self):
        a, b = chaos_pair(MessageFaultRule("corrupt", direction="send", index=0))
        a.send(assign())
        with pytest.raises(ChannelTimeout):
            b.recv(timeout=0.05)
        assert a.corrupted == 1 and a.dropped == 0


class TestDuplicate:
    def test_send_side_duplicate_arrives_twice(self):
        a, b = chaos_pair(MessageFaultRule("duplicate", direction="send", index=0))
        a.send(assign())
        assert b.recv(timeout=1.0) == assign()
        assert b.recv(timeout=1.0) == assign()
        assert a.duplicated == 1

    def test_recv_side_duplicate_returned_twice(self):
        a, b = chaos_pair(MessageFaultRule("duplicate", direction="recv", index=0))
        b.send(IdleSignal(slave_id=3))
        assert a.recv(timeout=1.0) == IdleSignal(slave_id=3)
        assert a.recv(timeout=1.0) == IdleSignal(slave_id=3)
        assert a.duplicated == 1


class TestDelay:
    def test_recv_side_delay_holds_the_message_back(self):
        a, b = chaos_pair(
            MessageFaultRule("delay", direction="recv", index=0, delay=0.15)
        )
        b.send(IdleSignal(slave_id=1))
        t0 = time.monotonic()
        with pytest.raises(ChannelTimeout):
            a.recv(timeout=0.03)  # too early: still held
        msg = a.recv(timeout=1.0)
        assert msg == IdleSignal(slave_id=1)
        assert time.monotonic() - t0 >= 0.1
        assert a.delayed == 1

    def test_delayed_message_does_not_block_later_traffic(self):
        a, b = chaos_pair(
            MessageFaultRule("delay", direction="recv", index=0, delay=0.5)
        )
        b.send(IdleSignal(slave_id=1))  # held back half a second
        b.send(IdleSignal(slave_id=2))
        assert a.recv(timeout=1.0) == IdleSignal(slave_id=2)


class TestSeededPlanThroughChannel:
    def test_p_one_drop_only_loses_every_message(self):
        a, b = chaos_pair()
        a.plan = MessageFaultPlan.random(1.0, seed=3, kinds=("drop",), protect=())
        for i in range(5):
            a.send(assign(i))
        with pytest.raises(ChannelTimeout):
            b.recv(timeout=0.05)
        assert a.dropped == 5

    def test_same_seed_same_fault_sequence(self):
        def run(seed):
            a, b = chaos_pair()
            a.plan = MessageFaultPlan.random(0.5, seed=seed, kinds=("drop",), protect=())
            for i in range(24):
                a.send(assign(i))
            got = []
            while True:
                try:
                    got.append(b.recv(timeout=0.02).task_id)
                except ChannelTimeout:
                    return tuple(got)

        assert run(4) == run(4)
        assert run(4) != run(5)
