"""Fault composition at the channel boundary.

Explicit message-fault rules compose: one message matched by several
rules suffers them all, in rule order. These tests pin the interesting
pairings — duplicate+delay (both copies held back), corrupt and bitflip
each combined with duplicate (every copy carries the same mutation) —
and the digest consequences that distinguish the two corruption tiers.
"""

import numpy as np
import pytest

from repro.chaos.channel import ChaosChannel
from repro.cluster.faults import (
    DETECTABLE_MESSAGE_KINDS,
    MESSAGE_FAULT_KINDS,
    MessageFaultPlan,
    MessageFaultRule,
)
from repro.comm.messages import TaskResult
from repro.comm.serialization import content_digest
from repro.comm.transport import ChannelTimeout, channel_pair


def chaos_pair(*rules):
    a, b = channel_pair()
    return ChaosChannel(a, MessageFaultPlan(rules), endpoint_index=0), b


def result(i=0, fill=3.0):
    outputs = {"block": np.full((2, 3), fill)}
    return TaskResult(
        task_id=(i, 0), epoch=0, slave_id=1, outputs=outputs,
        digest=content_digest(outputs),
    )


class TestDecideAll:
    def test_explicit_rules_compose_in_order(self):
        plan = MessageFaultPlan([
            MessageFaultRule("duplicate", direction="recv", index=0),
            MessageFaultRule("delay", direction="recv", index=0, delay=0.01),
        ])
        kinds = [r.kind for r in plan.decide_all("recv", "TaskResult", (0, 0), 0)]
        assert kinds == ["duplicate", "delay"]

    def test_random_mode_draws_at_most_one(self):
        plan = MessageFaultPlan.random(1.0, seed=3, kinds=MESSAGE_FAULT_KINDS)
        for index in range(20):
            assert len(plan.decide_all("recv", "TaskResult", (0, 0), index)) == 1

    def test_random_default_kinds_exclude_bitflip(self):
        """bitflip evades digests by design: random campaigns must opt in,
        or every non-SDC campaign would silently corrupt results."""
        assert "bitflip" not in DETECTABLE_MESSAGE_KINDS
        assert set(DETECTABLE_MESSAGE_KINDS) < set(MESSAGE_FAULT_KINDS)
        plan = MessageFaultPlan.random(1.0, seed=0)
        drawn = {
            plan.decide_all("recv", "TaskResult", (0, 0), i)[0].kind
            for i in range(200)
        }
        assert "bitflip" not in drawn
        assert drawn <= set(DETECTABLE_MESSAGE_KINDS)


class TestDuplicatePlusDelay:
    def test_both_copies_arrive_after_the_hold(self):
        a, b = chaos_pair(
            MessageFaultRule("duplicate", direction="recv", index=0),
            MessageFaultRule("delay", direction="recv", index=0, delay=0.15),
        )
        b.send(result())
        with pytest.raises(ChannelTimeout):
            a.recv(timeout=0.03)  # still held
        first = a.recv(timeout=1.0)
        second = a.recv(timeout=1.0)
        assert first == result() and second == result()
        assert a.duplicated == 1 and a.delayed == 1 and a.faults_injected == 2


class TestCorruptPlusDuplicate:
    def test_both_copies_mutated_with_stale_digest(self):
        a, b = chaos_pair(
            MessageFaultRule("corrupt", direction="recv", index=0),
            MessageFaultRule("duplicate", direction="recv", index=0),
        )
        b.send(result())
        copies = [a.recv(timeout=1.0), a.recv(timeout=1.0)]
        for msg in copies:
            # Payload mutated, stamped digest left stale: the receive-side
            # verify catches this tier.
            assert not np.array_equal(msg.outputs["block"], result().outputs["block"])
            assert content_digest(msg.outputs) != msg.digest
        assert copies[0].digest == copies[1].digest
        assert a.corrupted == 1 and a.duplicated == 1

    def test_bitflip_copies_restamped_and_self_consistent(self):
        a, b = chaos_pair(
            MessageFaultRule("bitflip", direction="recv", index=0),
            MessageFaultRule("duplicate", direction="recv", index=0),
        )
        b.send(result())
        copies = [a.recv(timeout=1.0), a.recv(timeout=1.0)]
        for msg in copies:
            # Payload mutated AND digest recomputed: receive-side verify
            # passes, so only audit/vote can catch this tier.
            assert not np.array_equal(msg.outputs["block"], result().outputs["block"])
            assert content_digest(msg.outputs) == msg.digest
            assert msg.digest != result().digest
        assert a.bitflipped == 1 and a.duplicated == 1


class TestCorruptDegradesToDrop:
    def test_payload_free_message_is_lost_not_delivered_clean(self):
        msg = TaskResult(task_id=(0, 0), epoch=0, slave_id=1, outputs={})
        a, b = chaos_pair(MessageFaultRule("corrupt", direction="recv", index=0))
        b.send(msg)
        with pytest.raises(ChannelTimeout):
            a.recv(timeout=0.05)


class TestSendSideComposition:
    def test_duplicate_plus_corrupt_on_send(self):
        a, b = chaos_pair(
            MessageFaultRule("duplicate", direction="send", index=0),
            MessageFaultRule("corrupt", direction="send", index=0),
        )
        a.send(result())
        copies = [b.recv(timeout=1.0), b.recv(timeout=1.0)]
        for msg in copies:
            assert content_digest(msg.outputs) != msg.digest
        assert a.duplicated == 1 and a.corrupted == 1
