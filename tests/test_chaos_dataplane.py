"""Chaos coverage for the data plane: batch envelopes and shm refs.

Message faults and worker deaths must apply to ``BatchAssign`` /
``BatchResult`` envelopes exactly as they do to single task messages,
and the zero-copy shm transport must never leak ``/dev/shm`` segments —
not even when a run aborts mid-wave. Campaign-level tests assert the
usual invariant (oracle-identical or clean abort) with the data-plane
knobs on; unit tests pin the fault surface itself.
"""

import os

import numpy as np
import pytest

from repro.chaos.campaign import CampaignSpec, chaos_config, run_campaign
from repro.chaos.channel import ChaosChannel
from repro.cluster.faults import MessageFaultPlan, MessageFaultRule
from repro.comm.messages import BatchAssign, BatchResult, TaskAssign, TaskResult
from repro.comm.serialization import content_digest
from repro.comm.shm import leaked_segments
from repro.comm.transport import ChannelTimeout, channel_pair


def chaos_pair(*rules):
    a, b = channel_pair()
    return ChaosChannel(a, MessageFaultPlan(rules), endpoint_index=0), b


def batch_assign(n=3, stamp=True):
    assigns = []
    for i in range(n):
        inputs = {"x": np.arange(16.0) + i}
        assigns.append(
            TaskAssign(
                (i, 0), 0, inputs,
                digest=content_digest(inputs) if stamp else None,
            )
        )
    return BatchAssign(assigns=tuple(assigns))


class TestBatchEnvelopeFaults:
    def test_drop_loses_whole_wave(self):
        a, b = chaos_pair(
            MessageFaultRule("drop", direction="send", message_type="BatchAssign")
        )
        a.send(batch_assign())
        with pytest.raises(ChannelTimeout):
            b.recv(timeout=0.05)
        assert a.dropped == 1

    def test_corrupt_mutates_one_element_keeps_the_rest(self):
        a, b = chaos_pair(
            MessageFaultRule("corrupt", direction="send", message_type="BatchAssign")
        )
        original = batch_assign()
        a.send(original)
        msg = b.recv(timeout=1.0)
        assert isinstance(msg, BatchAssign) and len(msg.assigns) == 3
        mutated = [
            i
            for i, (got, sent) in enumerate(zip(msg.assigns, original.assigns))
            if not np.array_equal(got.inputs["x"], sent.inputs["x"])
        ]
        assert mutated == [0]  # first payload-carrying element only
        # ``corrupt`` keeps the stale digest, so the receiver can detect it.
        bad = msg.assigns[0]
        assert content_digest(bad.inputs) != bad.digest
        ok = msg.assigns[1]
        assert content_digest(ok.inputs) == ok.digest

    def test_bitflip_restamps_the_digest(self):
        a, b = chaos_pair(
            MessageFaultRule("bitflip", direction="send", message_type="BatchAssign")
        )
        a.send(batch_assign())
        msg = b.recv(timeout=1.0)
        bad = msg.assigns[0]
        # The digest-evading tier: payload changed but digest matches it.
        assert content_digest(bad.inputs) == bad.digest

    def test_result_envelope_corrupt(self):
        a, b = chaos_pair(
            MessageFaultRule("corrupt", direction="recv", message_type="BatchResult")
        )
        outputs = {"y": np.arange(32.0)}
        b.send(
            BatchResult(
                slave_id=1,
                results=(
                    TaskResult((0, 0), 0, 1, outputs, digest=content_digest(outputs)),
                ),
            )
        )
        msg = a.recv(timeout=1.0)
        bad = msg.results[0]
        assert content_digest(bad.outputs) != bad.digest

    def test_envelope_without_arrays_drops_instead(self):
        """A corrupt fault that finds no payload bytes degrades to a drop
        (same rule as single messages)."""
        a, b = chaos_pair(
            MessageFaultRule("corrupt", direction="send", message_type="BatchAssign")
        )
        a.send(BatchAssign(assigns=(TaskAssign((0, 0), 0, {}),)))
        with pytest.raises(ChannelTimeout):
            b.recv(timeout=0.05)
        assert a.corrupted == 1  # noted as a corrupt, delivered as a loss


class TestCampaignKnobs:
    def test_dataplane_knobs_thread_into_run_config(self):
        spec = CampaignSpec(batch_wave=True, max_batch=5, shm=True)
        for backend in ("threads", "processes", "simulated"):
            cfg = chaos_config(backend, 0, spec)
            assert cfg.batch_wave and cfg.max_batch == 5 and cfg.shm

    def test_default_spec_leaves_dataplane_off(self):
        cfg = chaos_config("threads", 0, CampaignSpec())
        assert not cfg.batch_wave and not cfg.shm


class TestDataplaneCampaigns:
    def test_simulated_batch_campaign_ten_seeds_green(self):
        spec = CampaignSpec(
            backends=("simulated",), seeds=10, size=32, run_timeout=30.0,
            batch_wave=True,
        )
        result = run_campaign(spec)
        assert len(result.outcomes) == 10
        result.raise_if_failed()

    @pytest.mark.slow
    def test_threads_batch_campaign_ten_seeds_green(self):
        spec = CampaignSpec(
            backends=("threads",), seeds=10, size=32, run_timeout=30.0,
            batch_wave=True,
        )
        result = run_campaign(spec)
        assert len(result.outcomes) == 10
        result.raise_if_failed()

    @pytest.mark.slow
    def test_processes_shm_batch_campaign_holds_and_leaks_nothing(self):
        spec = CampaignSpec(
            backends=("processes",), seeds=3, size=32, run_timeout=30.0,
            batch_wave=True, shm=True,
        )
        result = run_campaign(spec)
        result.raise_if_failed()
        # Every seed saw worker deaths + message faults over shm refs;
        # whatever the outcome path, no segment outlives its run.
        assert leaked_segments(f"repro-{os.getpid()}-") == []
