"""Property tests for the seeded fault plans (repro.cluster.faults).

The chaos campaign's replayability rests on one property: every random
plan is a pure function of ``(seed, key)``. These tests pin that down,
along with the probability edges (p=0 injects nothing, p=1 injects
everything) and picklability (plans cross the process boundary to slave
processes).
"""

import pickle
import random

import pytest

from repro.cluster.faults import (
    MESSAGE_FAULT_KINDS,
    FaultPlan,
    FaultRule,
    MessageFaultPlan,
    MessageFaultRule,
    WorkerFaultPlan,
    WorkerFaultRule,
    derived_rng,
)

TASKS = [(i, j) for i in range(8) for j in range(8)]


class TestDerivedRng:
    def test_pure_function_of_key(self):
        a = derived_rng(7, 11, (2, 3)).random(4)
        b = derived_rng(7, 11, (2, 3)).random(4)
        assert list(a) == list(b)

    def test_salt_separates_streams(self):
        a = derived_rng(7, 11, (2, 3)).random()
        b = derived_rng(7, 13, (2, 3)).random()
        assert a != b

    def test_key_separates_streams(self):
        assert derived_rng(7, 11, (2, 3)).random() != derived_rng(7, 11, (2, 4)).random()

    def test_exotic_keys_are_stable(self):
        # Non-int vertex ids fall back to a repr hash, still deterministic.
        assert derived_rng(1, 11, "v-a").random() == derived_rng(1, 11, "v-a").random()


class TestFaultPlanRandom:
    def test_same_seed_same_decisions_any_query_order(self):
        forward = FaultPlan.random(0.4, seed=5)
        backward = FaultPlan.random(0.4, seed=5)
        a = {t: forward.lookup(t, 0) for t in TASKS}
        b = {t: backward.lookup(t, 0) for t in reversed(TASKS)}
        assert a == b

    def test_different_seeds_differ(self):
        a = {t: FaultPlan.random(0.5, seed=1).lookup(t, 0) for t in TASKS}
        b = {t: FaultPlan.random(0.5, seed=2).lookup(t, 0) for t in TASKS}
        assert a != b

    def test_p_zero_injects_nothing(self):
        plan = FaultPlan.random(0.0, seed=3)
        assert all(plan.lookup(t, 0) is None for t in TASKS)
        assert not plan

    def test_p_one_faults_every_first_attempt(self):
        plan = FaultPlan.random(1.0, seed=3, kind=("crash", "hang"))
        for t in TASKS:
            rule = plan.lookup(t, 0)
            assert rule is not None and rule.kind in ("crash", "hang")

    def test_retries_never_refault(self):
        # Random task faults hit attempt 0 only: recovery must be able to win.
        plan = FaultPlan.random(1.0, seed=3)
        assert all(plan.lookup(t, attempt) is None for t in TASKS for attempt in (1, 2, 5))

    def test_decision_is_memoized_consistently(self):
        plan = FaultPlan.random(0.5, seed=9)
        assert [plan.lookup(t, 0) for t in TASKS] == [plan.lookup(t, 0) for t in TASKS]

    def test_pickle_roundtrip_preserves_decisions(self):
        plan = FaultPlan.random(0.5, seed=4)
        before = {t: plan.lookup(t, 0) for t in TASKS}
        clone = pickle.loads(pickle.dumps(plan))
        assert {t: clone.lookup(t, 0) for t in TASKS} == before

    def test_explicit_rule_matches_attempt(self):
        plan = FaultPlan([FaultRule("crash", (1, 1), attempt=2)])
        assert plan.lookup((1, 1), 2).kind == "crash"
        assert plan.lookup((1, 1), 0) is None
        assert plan.lookup((0, 0), 2) is None

    def test_invalid_kind_rejected(self):
        with pytest.raises(Exception):
            FaultPlan.random(0.5, kind="explode")


class TestMessageFaultPlanRandom:
    def _decisions(self, plan, n=64):
        return {
            (d, i): plan.decide(d, "TaskAssign", (0, 0), i, endpoint=2)
            for d in ("send", "recv")
            for i in range(n)
        }

    def test_same_seed_same_decisions_any_query_order(self):
        keys = [(d, i) for d in ("send", "recv") for i in range(64)]
        shuffled = list(keys)
        random.Random(0).shuffle(shuffled)
        a = MessageFaultPlan.random(0.3, seed=6)
        b = MessageFaultPlan.random(0.3, seed=6)
        da = {k: a.decide(k[0], "TaskAssign", None, k[1], endpoint=2) for k in keys}
        db = {k: b.decide(k[0], "TaskAssign", None, k[1], endpoint=2) for k in shuffled}
        assert da == db

    def test_endpoints_get_independent_streams(self):
        plan = MessageFaultPlan.random(0.5, seed=6)
        a = [plan.decide("recv", "TaskResult", None, i, endpoint=0) for i in range(64)]
        b = [plan.decide("recv", "TaskResult", None, i, endpoint=1) for i in range(64)]
        assert a != b

    def test_p_zero_delivers_everything(self):
        plan = MessageFaultPlan.random(0.0, seed=1)
        assert not any(self._decisions(plan).values())

    def test_p_one_faults_everything(self):
        plan = MessageFaultPlan.random(1.0, seed=1)
        decisions = self._decisions(plan)
        assert all(d is not None for d in decisions.values())
        assert all(d.kind in MESSAGE_FAULT_KINDS for d in decisions.values())

    def test_end_signal_protected_by_default(self):
        plan = MessageFaultPlan.random(1.0, seed=1)
        assert all(
            plan.decide(d, "EndSignal", None, i) is None
            for d in ("send", "recv")
            for i in range(32)
        )

    def test_send_side_never_draws_delay(self):
        # Send-side delay would need a timer thread; the random mix
        # restricts itself to what the send path can realize inline.
        plan = MessageFaultPlan.random(1.0, seed=2)
        kinds = {plan.decide("send", "TaskAssign", None, i).kind for i in range(128)}
        assert "delay" not in kinds
        assert kinds <= set(MESSAGE_FAULT_KINDS)

    def test_explicit_rule_matching(self):
        rule = MessageFaultRule("drop", direction="recv", message_type="TaskResult", index=3)
        plan = MessageFaultPlan([rule])
        assert plan.decide("recv", "TaskResult", None, 3) is rule
        assert plan.decide("recv", "TaskResult", None, 4) is None
        assert plan.decide("send", "TaskResult", None, 3) is None
        assert plan.decide("recv", "IdleSignal", None, 3) is None

    def test_pickle_roundtrip(self):
        plan = MessageFaultPlan.random(0.3, seed=8)
        before = self._decisions(plan)
        assert self._decisions(pickle.loads(pickle.dumps(plan))) == before


class TestWorkerFaultPlanRandom:
    def test_same_seed_same_decisions(self):
        a = WorkerFaultPlan.random(p_die=0.5, p_slow=0.5, seed=7)
        b = WorkerFaultPlan.random(p_die=0.5, p_slow=0.5, seed=7)
        for w in range(16):
            assert a.death_point(w) == b.death_point(w)
            assert a.slow_factor(w) == b.slow_factor(w)

    def test_p_zero_everyone_healthy(self):
        plan = WorkerFaultPlan.random(p_die=0.0, p_slow=0.0, seed=1)
        assert all(plan.death_point(w) is None for w in range(16))
        assert all(plan.slow_factor(w) == 1.0 for w in range(16))
        assert not plan

    def test_p_one_everyone_faulted(self):
        plan = WorkerFaultPlan.random(p_die=1.0, p_slow=1.0, seed=1, max_after=3, factor=6.0)
        for w in range(16):
            assert plan.death_point(w) in (1, 2, 3)
            assert plan.slow_factor(w) == 6.0

    def test_die_and_slow_draw_independent_streams(self):
        plan = WorkerFaultPlan.random(p_die=0.5, p_slow=0.5, seed=3)
        dies = [plan.death_point(w) is not None for w in range(64)]
        slow = [plan.slow_factor(w) > 1.0 for w in range(64)]
        assert dies != slow  # would only match if the streams were shared

    def test_explicit_rules(self):
        plan = WorkerFaultPlan(
            [WorkerFaultRule("die", worker_id=1, after_tasks=2),
             WorkerFaultRule("slow", worker_id=2, factor=8.0)]
        )
        assert plan.death_point(1) == 2
        assert plan.death_point(0) is None
        assert plan.slow_factor(2) == 8.0
        assert plan.slow_factor(1) == 1.0

    def test_pickle_roundtrip(self):
        plan = WorkerFaultPlan.random(p_die=0.4, p_slow=0.4, seed=9)
        clone = pickle.loads(pickle.dumps(plan))
        for w in range(16):
            assert clone.death_point(w) == plan.death_point(w)
            assert clone.slow_factor(w) == plan.slow_factor(w)
