"""Kill-master chaos campaigns: crash the journaling master at a seeded
commit, resume from the write-ahead journal, and demand an
oracle-identical result with the resume invariants intact."""

import pytest

from repro.chaos import CampaignSpec, run_campaign
from repro.utils.errors import ChaosError


class TestSpecValidation:
    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_kill_master_at_must_be_fraction(self, bad):
        with pytest.raises(ChaosError):
            CampaignSpec(kill_master_at=bad)

    def test_full_fraction_is_allowed(self):
        assert CampaignSpec(kill_master_at=1.0).kill_master_at == 1.0


class TestKillMasterCampaign:
    @pytest.mark.parametrize("backend", ["simulated", "threads", "processes"])
    def test_kill_resume_campaign_all_acceptable(self, backend):
        spec = CampaignSpec(
            backends=(backend,),
            seeds=3,
            size=48,
            nodes=3,
            kill_master_at=0.5,
            # Kill-mode isolates the master crash: no extra fault pressure.
            message_p=0.0,
            worker_p_die=0.0,
            worker_p_slow=0.0,
            task_fault_p=0.0,
        )
        result = run_campaign(spec)
        assert len(result.outcomes) == 3
        assert result.ok, result.summary()
        # Every seed killed the master and came back — none were skipped.
        assert all(o.status == "ok" for o in result.outcomes), result.summary()

    def test_seeded_kill_points_are_deterministic(self):
        spec = CampaignSpec(
            backends=("simulated",), seeds=2, size=48, kill_master_at=0.4,
            message_p=0.0, worker_p_die=0.0, worker_p_slow=0.0, task_fault_p=0.0,
        )
        first = run_campaign(spec)
        second = run_campaign(spec)
        assert [o.status for o in first.outcomes] == [
            o.status for o in second.outcomes
        ]
        assert first.ok and second.ok
