"""Integration tests for the hardened recovery under injected chaos.

Every scenario asserts the campaign invariant at small scale: the run
either produces the serial-reference answer or aborts with a clean
FaultToleranceExhausted — and the recovery that happened is visible in
the run report and satisfies the fault/recovery trace invariants.
"""

import threading
import time

import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance
from repro.check.chaos_check import check_fault_invariants
from repro.cluster.faults import (
    FaultPlan,
    FaultRule,
    MessageFaultPlan,
    MessageFaultRule,
    WorkerFaultPlan,
    WorkerFaultRule,
)
from repro.runtime.master import MasterPart, MasterStats
from repro.runtime.worker_pool import ComputableStack, LeaseTable, RegisterTable
from repro.utils.errors import FaultToleranceExhausted, WorkerLeakWarning


class DropOnce(MessageFaultRule):
    """Drops only the first matching message (test helper).

    Rule ``index`` counts *all* messages per endpoint and direction, so
    "the first TaskResult" has no fixed index; this matches by type and
    then disarms itself.
    """

    def __post_init__(self):
        super().__post_init__()
        object.__setattr__(self, "_fired", False)

    def matches(self, direction, message_type, task_id, index):
        if not self._fired and super().matches(direction, message_type, task_id, index):
            object.__setattr__(self, "_fired", True)
            return True
        return False


@pytest.fixture
def problem():
    return EditDistance.random(50, 50, seed=4)


def cfg(**kw):
    base = dict(
        nodes=3,
        threads_per_node=1,
        backend="threads",
        process_partition=16,
        thread_partition=8,
        task_timeout=0.4,
        poll_interval=0.005,
        hang_duration=0.9,
        observe=True,
    )
    base.update(kw)
    return RunConfig(**base)


def assert_invariants(run, aborted=False):
    report = check_fault_invariants(run.report.events, aborted=aborted)
    assert report.ok, report.summary()


class TestWorkerDeath:
    def test_one_dead_slave_is_survivable(self, problem):
        plan = WorkerFaultPlan([WorkerFaultRule("die", worker_id=0, after_tasks=1)])
        run = EasyHPS(cfg(worker_fault_plan=plan)).run(problem)
        assert run.value.distance == problem.reference()
        # The dead worker's in-flight dispatch timed out and moved on.
        assert run.report.tasks_per_worker.get(0, 0) <= 1
        assert_invariants(run)

    def test_all_slaves_dead_aborts_cleanly(self, problem):
        # Every worker dies before serving anything: the stall watchdog
        # must turn "nobody will ever answer" into a clean abort, never a
        # hang (the outcome the chaos campaign forbids).
        plan = WorkerFaultPlan([WorkerFaultRule("die", after_tasks=0)])
        config = cfg(nodes=2, worker_fault_plan=plan, stall_timeout=0.6)
        t0 = time.monotonic()
        with pytest.raises(FaultToleranceExhausted):
            EasyHPS(config).run(problem)
        assert time.monotonic() - t0 < 30.0

    def test_death_in_simulated_backend(self, problem):
        plan = WorkerFaultPlan([WorkerFaultRule("die", worker_id=1, after_tasks=1)])
        config = RunConfig(
            nodes=3, threads_per_node=2, backend="simulated",
            process_partition=16, thread_partition=4,
            task_timeout=5.0, worker_fault_plan=plan, observe=True,
        )
        run = EasyHPS(config).run(problem)
        # The simulator schedules without computing values; correctness
        # here is "the schedule completed and the trace invariants hold".
        assert run.value is None
        kinds = {ev.kind for ev in run.report.events}
        assert "worker-death" in kinds
        # The dead node served at most its one pre-death task.
        assert run.report.tasks_per_worker.get(1, 0) <= 1
        assert_invariants(run)


class TestMessageLoss:
    def test_dropped_assign_redistributed(self, problem):
        plan = MessageFaultPlan(
            [MessageFaultRule("drop", direction="send", message_type="TaskAssign", index=0)]
        )
        run = EasyHPS(cfg(message_fault_plan=plan)).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.faults_recovered >= 1
        assert run.report.faults_injected >= 1
        assert_invariants(run)

    def test_dropped_result_redistributed(self, problem):
        plan = MessageFaultPlan([DropOnce("drop", direction="recv", message_type="TaskResult")])
        run = EasyHPS(cfg(message_fault_plan=plan)).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.faults_recovered >= 1
        assert_invariants(run)

    def test_duplicated_result_is_idempotent(self, problem):
        plan = MessageFaultPlan(
            [MessageFaultRule("duplicate", direction="recv", message_type="TaskResult",
                              index=None, task_id=(0, 0))]
        )
        run = EasyHPS(cfg(message_fault_plan=plan)).run(problem)
        assert run.value.distance == problem.reference()
        assert_invariants(run)

    def test_total_assign_loss_aborts_not_hangs(self, problem):
        # Every TaskAssign is lost: the retry budget must exhaust cleanly.
        plan = MessageFaultPlan(
            [MessageFaultRule("drop", direction="send", message_type="TaskAssign")]
        )
        config = cfg(nodes=2, message_fault_plan=plan, task_timeout=0.2, max_retries=2)
        with pytest.raises(FaultToleranceExhausted):
            EasyHPS(config).run(problem)


class TestBackoff:
    def test_retries_back_off_and_still_recover(self, problem):
        plan = FaultPlan([FaultRule("crash", (0, 0), 0), FaultRule("crash", (0, 0), 1)])
        run = EasyHPS(
            cfg(fault_plan=plan, retry_backoff=0.05, retry_backoff_max=0.2)
        ).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.faults_recovered >= 2
        kinds = {ev.kind for ev in run.report.events}
        assert "backoff" in kinds
        assert_invariants(run)


def master_stub(channels=3, threshold=2, task_timeout=0.3, now=100.0):
    """The slice of MasterPart state that _note_worker_failure touches."""

    class StubSched:
        observing = False
        enabled = False

    class StubClock:
        def __init__(self, t):
            self.t = t

        def now(self):
            return self.t

    stub = type("Stub", (), {})()
    stub.blacklist_threshold = threshold
    stub.channels = [object()] * channels
    stub.task_timeout = task_timeout
    stub.clock = StubClock(now)
    stub._worker_failures = {}
    stub._blacklisted = set()
    stub._left = set()
    stub._leases = LeaseTable()
    stub._last_heard = {}
    stub._budget_exempt = {}
    stub.stats = MasterStats()
    stub.sched = StubSched()
    stub._register = RegisterTable()
    stub._stack = ComputableStack()
    stub.block_store = None
    stub._release_blocks = lambda task_id: MasterPart._release_blocks(stub, task_id)
    stub._requeue_worker_tasks = lambda worker_id: MasterPart._requeue_worker_tasks(
        stub, worker_id
    )
    return stub


class TestBlacklist:
    """Unit tests of the failure-attribution/blacklist policy.

    (Driven directly because threshold crossings in a live run depend on
    scheduling timing; the chaos campaign exercises the integrated path.)
    """

    def test_below_threshold_keeps_worker(self):
        stub = master_stub(threshold=3)
        MasterPart._note_worker_failure(stub, 0)
        MasterPart._note_worker_failure(stub, 0)
        assert stub._blacklisted == set()

    def test_silent_worker_blacklisted_and_evicted_at_threshold(self):
        stub = master_stub(threshold=2)
        epoch = stub._register.register((0, 0), 0, now=99.0)
        MasterPart._note_worker_failure(stub, 0)
        MasterPart._note_worker_failure(stub, 0)
        assert stub._blacklisted == {0}
        assert stub.stats.blacklisted_workers == [0]
        # The worker's live dispatch was cancelled, exempted from the
        # retry budget, and re-queued.
        assert not stub._register.is_registered((0, 0), epoch)
        assert (0, 0) in stub._stack.snapshot()
        assert stub._budget_exempt[(0, 0)] == 1
        assert stub.stats.faults_recovered == 1

    def test_recently_heard_worker_is_vetoed(self):
        # Liveness-aware failure detection: a worker the master heard
        # from inside a timeout window is alive — its timeouts are
        # message loss, and blacklisting it would shoot a survivor.
        stub = master_stub(threshold=2, task_timeout=0.3, now=100.0)
        stub._last_heard[0] = 99.9
        MasterPart._note_worker_failure(stub, 0)
        MasterPart._note_worker_failure(stub, 0)
        assert stub._blacklisted == set()
        # Once it goes silent past the window, the next failure retires it.
        stub.clock.t = 101.0
        MasterPart._note_worker_failure(stub, 0)
        assert stub._blacklisted == {0}

    def test_degradation_floor_keeps_last_worker(self):
        stub = master_stub(channels=2, threshold=1)
        MasterPart._note_worker_failure(stub, 0)
        assert stub._blacklisted == {0}
        for _ in range(5):
            MasterPart._note_worker_failure(stub, 1)
        assert stub._blacklisted == {0}  # worker 1 survives, come what may

    def test_disabled_when_threshold_none(self):
        stub = master_stub(threshold=None)
        for _ in range(10):
            MasterPart._note_worker_failure(stub, 0)
        assert stub._blacklisted == set() and stub._worker_failures == {}


class TestSpeculation:
    def test_straggler_dispatch_speculatively_redispatched(self, problem):
        # One mid-run task hangs for 1s under a 10s timeout: only the
        # straggler scan can recover it quickly.
        plan = FaultPlan([FaultRule("hang", (2, 2), 0)])
        run = EasyHPS(
            cfg(fault_plan=plan, task_timeout=10.0, hang_duration=1.0,
                speculate=True, speculative_factor=2.0)
        ).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.speculative_redispatches >= 1
        kinds = {ev.kind for ev in run.report.events}
        assert "speculate" in kinds
        assert_invariants(run)


class TestWorkerLeakSurfacing:
    def _stub(self):
        class StubSched:
            observing = False

        stub = type("Stub", (), {})()
        stub.stats = MasterStats()
        stub.sched = StubSched()
        return stub

    def test_live_thread_warns_and_counts(self):
        stub = self._stub()
        t = threading.Thread(target=time.sleep, args=(0.5,), daemon=True)
        t.start()
        with pytest.warns(WorkerLeakWarning):
            MasterPart._surface_leaks(stub, [t])
        assert stub.stats.worker_leaks == 1
        t.join()

    def test_joined_thread_is_silent(self):
        stub = self._stub()
        t = threading.Thread(target=lambda: None)
        t.start()
        t.join()
        MasterPart._surface_leaks(stub, [t])
        assert stub.stats.worker_leaks == 0


class TestCrossBackendInvariants:
    """The same seeded fault mix holds the invariant on every backend."""

    @pytest.mark.parametrize("backend", ["serial", "simulated", "threads"])
    def test_seeded_mix_holds_invariant(self, backend, problem):
        config = RunConfig(
            nodes=2, threads_per_node=2, backend=backend,
            process_partition=16, thread_partition=4,
            task_timeout=5.0 if backend in ("serial", "simulated") else 0.5,
            subtask_timeout=5.0 if backend in ("serial", "simulated") else 2.0,
            poll_interval=0.005,
            fault_plan=FaultPlan.random(0.1, seed=3),
            message_fault_plan=(
                MessageFaultPlan.random(0.05, seed=3)
                if backend != "serial" else MessageFaultPlan.none()
            ),
            blacklist_threshold=4, retry_backoff=0.01, observe=True,
        )
        try:
            run = EasyHPS(config).run(problem)
        except FaultToleranceExhausted:
            return  # a clean abort satisfies the invariant
        if run.value is not None:  # the simulator schedules without values
            assert run.value.distance == problem.reference()
        assert_invariants(run)

    @pytest.mark.slow
    def test_seeded_mix_holds_invariant_processes(self, problem):
        config = RunConfig(
            nodes=2, threads_per_node=2, backend="processes",
            process_partition=16, thread_partition=4,
            task_timeout=0.75, subtask_timeout=2.0, poll_interval=0.01,
            fault_plan=FaultPlan.random(0.1, seed=3),
            message_fault_plan=MessageFaultPlan.random(0.05, seed=3),
            blacklist_threshold=4, retry_backoff=0.01, observe=True,
        )
        try:
            run = EasyHPS(config).run(problem)
        except FaultToleranceExhausted:
            return
        assert run.value.distance == problem.reference()
        assert_invariants(run)
