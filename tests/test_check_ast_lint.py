"""The lock- and clock-discipline source lints."""

from repro.check.ast_lint import (
    check_clock_discipline,
    check_lock_discipline,
    lint_clock_discipline,
    lint_lock_discipline,
)


class TestLockLint:
    def test_direct_construction_flagged(self):
        src = "import threading\nlock = threading.Lock()\n"
        hits = lint_lock_discipline(src, "<t>")
        assert [line for line, _ in hits] == [2]

    def test_condition_flagged(self):
        src = "import threading\ncond = threading.Condition()\n"
        assert lint_lock_discipline(src, "<t>")

    def test_module_alias_resolved(self):
        src = "import threading as _t\nlock = _t.Lock()\n"
        assert lint_lock_discipline(src, "<t>")

    def test_symbol_import_resolved(self):
        src = "from threading import Lock as L\nlock = L()\n"
        assert lint_lock_discipline(src, "<t>")

    def test_make_lock_is_clean(self):
        src = (
            "from repro.check.lock_lint import make_lock\n"
            "lock = make_lock('worker-pool')\n"
        )
        assert not lint_lock_discipline(src, "<t>")

    def test_other_threading_api_is_clean(self):
        src = "import threading\nt = threading.Thread(target=print)\nev = threading.Event()\n"
        assert not lint_lock_discipline(src, "<t>")

    def test_syntax_error_reported_not_raised(self):
        hits = lint_lock_discipline("def broken(:\n", "<t>")
        assert hits and "syntax" in hits[0][1].lower()


class TestClockLint:
    def test_time_time_flagged(self):
        src = "import time\nnow = time.time()\n"
        assert lint_clock_discipline(src, "<t>")

    def test_monotonic_flagged(self):
        src = "import time as _t\ndeadline = _t.monotonic() + 5\n"
        assert lint_clock_discipline(src, "<t>")

    def test_from_import_flagged(self):
        src = "from time import monotonic\nx = monotonic()\n"
        assert lint_clock_discipline(src, "<t>")

    def test_perf_counter_allowed(self):
        # Wall-time *measurement* is fine; scheduling decisions are not.
        src = "import time\nt0 = time.perf_counter()\n"
        assert not lint_clock_discipline(src, "<t>")

    def test_sleep_allowed(self):
        src = "import time\ntime.sleep(0.1)\n"
        assert not lint_clock_discipline(src, "<t>")


class TestTreeWideChecks:
    def test_runtime_tree_has_lock_discipline(self):
        report = check_lock_discipline()
        assert report.ok, [d.message for d in report.diagnostics]
        assert report.checked > 50  # whole package scanned

    def test_scheduling_tree_has_clock_discipline(self):
        report = check_clock_discipline()
        assert report.ok, [d.message for d in report.diagnostics]
        assert report.checked >= 10  # runtime/ + backends/

    def test_lints_scoped_to_real_source_root(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import threading\nlock = threading.Lock()\n")
        report = check_lock_discipline(root=str(tmp_path))
        assert not report.ok
        assert any("bad.py" in d.subject for d in report.diagnostics)
