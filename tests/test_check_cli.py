"""The ``repro check`` CLI verb."""

import pytest

from repro.cli import main


class TestCheckCommand:
    def test_all_builtin_exits_zero(self, capsys):
        assert main(["check", "--all-builtin"]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out
        assert "pattern:wavefront-6x9" in out
        assert "algorithm:lcs" in out

    def test_default_is_all_builtin(self, capsys):
        assert main(["check", "--size", "12"]) == 0
        assert "0 failed" in capsys.readouterr().out

    def test_selftest_exits_zero(self, capsys):
        assert main(["check", "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "[pattern-cycle]" in out
        assert "[lock-cycle]" in out
        assert "MISS" not in out

    def test_single_pattern(self, capsys):
        assert main(["check", "--pattern", "wavefront", "--size", "8"]) == 0
        assert "pattern:wavefront-8" in capsys.readouterr().out

    def test_single_triangular_pattern(self, capsys):
        assert main(["check", "--pattern", "triangular", "--size", "7"]) == 0

    def test_single_algorithm(self, capsys):
        assert main(["check", "--algo", "lcs", "--size", "16"]) == 0
        assert "algorithm:lcs" in capsys.readouterr().out

    def test_unknown_pattern_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "--pattern", "moebius"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "--algo", "bogosort"])

    def test_exclusive_targets(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "--selftest", "--pattern", "wavefront"])
        capsys.readouterr()


class TestExitCodeContract:
    """The documented contract: 0 clean, 1 failed checks, 2 usage error."""

    def test_clean_run_exits_zero(self, capsys):
        assert main(["check", "--pattern", "wavefront", "--size", "6"]) == 0
        capsys.readouterr()

    def test_failed_checks_exit_one(self, capsys, monkeypatch):
        import repro.check.fixtures as fixtures

        monkeypatch.setattr(
            fixtures, "run_selftest",
            lambda: [("blind-spot", "some-code", False)],
        )
        assert main(["check", "--selftest"]) == 1
        out = capsys.readouterr().out
        assert "MISS" in out
        assert "1 failed" in out

    def test_usage_error_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["check", "--no-such-flag"])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_conflicting_targets_exit_two(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["check", "--selftest", "--protocol"])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_selftest_covers_the_fixture_floor(self, capsys):
        assert main(["check", "--selftest"]) == 0
        out = capsys.readouterr().out
        fixtures = [line for line in out.splitlines() if "(expects [" in line]
        assert len(fixtures) >= 12  # issue floor; currently 16


class TestProtocolAndExplore:
    def test_protocol_target(self, capsys):
        assert main(["check", "--protocol", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "protocol:spec" in out
        assert "protocol:conformance:simulated" in out
        assert "protocol:conformance:threads" in out

    def test_explore_target(self, capsys, tmp_path):
        assert main([
            "check", "--explore", "--explore-grid", "2", "2",
            "--artifact-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "exploration:" in out
        assert "exhaustive" in out
        assert "protocol:explore" in out
        assert not list(tmp_path.iterdir())  # clean run: no artifacts

    def test_replay_of_unreadable_trace_is_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "--replay", "/nonexistent/trace.json"])
        capsys.readouterr()


class TestVerifyFlag:
    def test_run_verify(self, capsys):
        assert main([
            "run", "--algo", "lcs", "--size", "24", "--verify",
            "--nodes", "3", "--threads", "2",
        ]) == 0
        assert "result:" in capsys.readouterr().out

    def test_simulate_verify(self, capsys):
        assert main([
            "simulate", "--algo", "nussinov", "--size", "30",
            "--nodes", "3", "--cores", "9", "--verify",
        ]) == 0
