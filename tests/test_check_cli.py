"""The ``repro check`` CLI verb."""

import pytest

from repro.cli import main


class TestCheckCommand:
    def test_all_builtin_exits_zero(self, capsys):
        assert main(["check", "--all-builtin"]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out
        assert "pattern:wavefront-6x9" in out
        assert "algorithm:lcs" in out

    def test_default_is_all_builtin(self, capsys):
        assert main(["check", "--size", "12"]) == 0
        assert "0 failed" in capsys.readouterr().out

    def test_selftest_exits_zero(self, capsys):
        assert main(["check", "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "[pattern-cycle]" in out
        assert "[lock-cycle]" in out
        assert "MISS" not in out

    def test_single_pattern(self, capsys):
        assert main(["check", "--pattern", "wavefront", "--size", "8"]) == 0
        assert "pattern:wavefront-8" in capsys.readouterr().out

    def test_single_triangular_pattern(self, capsys):
        assert main(["check", "--pattern", "triangular", "--size", "7"]) == 0

    def test_single_algorithm(self, capsys):
        assert main(["check", "--algo", "lcs", "--size", "16"]) == 0
        assert "algorithm:lcs" in capsys.readouterr().out

    def test_unknown_pattern_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "--pattern", "moebius"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "--algo", "bogosort"])

    def test_exclusive_targets(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "--selftest", "--pattern", "wavefront"])
        capsys.readouterr()


class TestVerifyFlag:
    def test_run_verify(self, capsys):
        assert main([
            "run", "--algo", "lcs", "--size", "24", "--verify",
            "--nodes", "3", "--threads", "2",
        ]) == 0
        assert "result:" in capsys.readouterr().out

    def test_simulate_verify(self, capsys):
        assert main([
            "simulate", "--algo", "nussinov", "--size", "30",
            "--nodes", "3", "--cores", "9", "--verify",
        ]) == 0
