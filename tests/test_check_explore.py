"""The systematic interleaving explorer and its controlled scheduler."""

import pytest

from repro.check import diagnostics as D
from repro.check.explore import (
    ExploreConfig,
    Scenario,
    TargetedFaultPlan,
    TargetedFaultRule,
    check_exploration,
    default_scenarios,
    replay_counterexample,
    reorder_double_commit_model,
    run_exploration,
    scenario_by_name,
)
from repro.cluster.simcore import ControlledEventQueue

#: Tiny campaign: 2x2 blocks, 2 workers — seconds, not minutes.
TINY = ExploreConfig(rows=2, cols=2, workers=2)
#: Single block, single worker: the minimal stage for the seeded defect.
ONE = ExploreConfig(rows=1, cols=1, workers=1)


def delay_scenario(cfg):
    """The tie-constructing scenario randomized chaos cannot produce:
    the first result delayed to arrive exactly at its own timeout."""
    return Scenario(
        name="delay-result-n0-i0",
        message_plan=TargetedFaultPlan(
            (
                TargetedFaultRule(
                    "delay", "recv", 0, 0, delay=cfg.task_timeout - 1.0
                ),
            )
        ),
    )


class TestControlledEventQueue:
    def test_single_events_need_no_chooser(self):
        evq = ControlledEventQueue()
        seen = []
        evq.at(1.0, lambda: seen.append("a"), label=("a",))
        evq.at(2.0, lambda: seen.append("b"), label=("b",))
        evq.run()
        assert seen == ["a", "b"]

    def test_ties_routed_through_chooser(self):
        class PickLast:
            def __init__(self):
                self.tie_sets = []

            def choose(self, ties):
                self.tie_sets.append([label for _, label in ties])
                return len(ties) - 1

        chooser = PickLast()
        evq = ControlledEventQueue(chooser)
        seen = []
        for name in ("a", "b", "c"):
            evq.at(1.0, lambda n=name: seen.append(n), label=(name,))
        evq.run()
        assert len(seen) == 3
        # First decision saw the full 3-way tie; the chooser reordered it.
        assert len(chooser.tie_sets[0]) == 3
        assert seen[0] == "c"

    def test_bad_choice_index_rejected(self):
        from repro.cluster.simcore import SimulationError

        class Bad:
            def choose(self, ties):
                return 99

        evq = ControlledEventQueue(Bad())
        evq.at(1.0, lambda: None, label=("a",))
        evq.at(1.0, lambda: None, label=("b",))
        with pytest.raises(SimulationError):
            evq.run()


class TestTargetedFaultPlan:
    def test_matches_only_the_indexed_message(self):
        rule = TargetedFaultRule("drop", "send", endpoint=1, index=2)
        plan = TargetedFaultPlan((rule,))
        assert not plan.decide_all("send", "TaskAssign", None, 1, endpoint=1)
        hits = plan.decide_all("send", "TaskAssign", None, 2, endpoint=1)
        assert [r.kind for r in hits] == ["drop"]
        assert not plan.decide_all("send", "TaskAssign", None, 2, endpoint=0)
        assert not plan.decide_all("recv", "TaskResult", None, 2, endpoint=1)

    def test_truthiness_reflects_rules(self):
        assert not TargetedFaultPlan(())
        assert TargetedFaultPlan((TargetedFaultRule("drop", "send", 0, 0),))


class TestExploration:
    def test_exhaustive_tiny_campaign_is_clean(self):
        report, result = check_exploration(TINY)
        assert report.ok, [d.message for d in report.diagnostics]
        assert result.exhaustive
        assert not result.violations
        assert result.interleavings > result.scenarios > 0

    def test_fingerprint_pruning_merges_interleavings(self):
        _, result = check_exploration(TINY)
        assert result.pruned > 0

    def test_scenarios_cover_drops_deaths_and_delays(self):
        names = [s.name for s in default_scenarios(TINY)]
        assert "fault-free" in names
        assert any(n.startswith("drop-assign") for n in names)
        assert any(n.startswith("drop-result") for n in names)
        assert any(n.startswith("delay-result") for n in names)
        assert any(n.startswith("death-") for n in names)
        assert any("+" in n for n in names)  # combined drop+death

    def test_scenario_by_name_round_trips(self):
        for s in default_scenarios(TINY):
            assert scenario_by_name(TINY, s.name).name == s.name
        with pytest.raises(KeyError):
            scenario_by_name(TINY, "no-such-scenario")


class TestSeededDefect:
    """The reordering-dependent double commit: invisible to randomized
    chaos (which cannot construct the result/timeout tie), found by the
    explorer, and replayable from the recorded choice sequence."""

    def test_defect_found_and_replayable(self, tmp_path):
        result = run_exploration(
            ONE,
            scenarios=[delay_scenario(ONE)],
            model_factory=reorder_double_commit_model,
            artifact_dir=str(tmp_path),
        )
        assert result.violations
        ce = result.violations[0]
        assert D.DUPLICATE_COMMIT in ce.codes
        assert ce.trace_path is not None

        # Replay from the recorded schedule reproduces the violation...
        replayed = replay_counterexample(
            ONE, delay_scenario(ONE), list(ce.choices),
            model_factory=reorder_double_commit_model,
        )
        assert set(replayed.codes()) == set(ce.codes)
        # ...and the fixed (stock) model is clean on the same schedule.
        fixed = replay_counterexample(ONE, delay_scenario(ONE), list(ce.choices))
        assert fixed.ok, [d.message for d in fixed.diagnostics]

    def test_counterexample_trace_round_trips(self, tmp_path):
        from repro.obs.export import read_trace

        result = run_exploration(
            ONE,
            scenarios=[delay_scenario(ONE)],
            model_factory=reorder_double_commit_model,
            artifact_dir=str(tmp_path),
        )
        _events, _metrics, meta = read_trace(result.violations[0].trace_path)
        assert meta["kind"] == "explore-counterexample"
        assert meta["scenario"] == "delay-result-n0-i0"
        assert [int(c) for c in meta["choices"]] == list(result.violations[0].choices)

    def test_stock_model_survives_the_same_scenario(self):
        result = run_exploration(ONE, scenarios=[delay_scenario(ONE)])
        assert not result.violations
        assert result.exhaustive


class TestDeterminism:
    def test_exploration_is_reproducible(self):
        a = run_exploration(TINY, scenarios=[Scenario(name="fault-free")])
        b = run_exploration(TINY, scenarios=[Scenario(name="fault-free")])
        assert a.interleavings == b.interleavings
        assert a.pruned == b.pruned
        assert not a.violations and not b.violations
