"""Tests for the result-integrity invariant pass and its seeded defects.

Synthetic event streams exercise each diagnostic both ways (violating
and clean); the fixture section proves ``repro check --selftest`` still
catches every seeded defect, including the three integrity ones.
"""

from dataclasses import dataclass

import pytest

from repro.check.diagnostics import (
    COMMIT_WITHOUT_VERIFY,
    DISPATCH_AFTER_QUARANTINE,
    TAINT_NOT_RECOMPUTED,
)
from repro.check.fixtures import (
    SELFTEST,
    liar_quarantine_trace,
    run_selftest,
    taint_without_recompute_trace,
    unverified_commit_case,
)
from repro.check.integrity_check import check_integrity_invariants, quarantined_workers


@dataclass
class Ev:
    """Minimal stand-in for an ObsEvent in synthetic streams."""

    seq: int
    kind: str
    task_id: object = None
    epoch: int = 0
    worker: int = -1


def stream(*specs):
    return [Ev(seq=i, **spec) for i, spec in enumerate(specs)]


class TestDispatchAfterQuarantine:
    def test_violation_detected(self):
        report = check_integrity_invariants(liar_quarantine_trace())
        assert report.has(DISPATCH_AFTER_QUARANTINE)

    def test_clean_run_passes(self):
        events = stream(
            dict(kind="assign", task_id=(0, 0), worker=1),
            dict(kind="commit", task_id=(0, 0), worker=1),
            dict(kind="quarantine", worker=1),
            dict(kind="assign", task_id=(0, 1), worker=0),
            dict(kind="commit", task_id=(0, 1), worker=0),
        )
        report = check_integrity_invariants(events)
        assert report.ok and report.checked > 0

    def test_assign_before_quarantine_is_legal(self):
        events = stream(
            dict(kind="assign", task_id=(0, 0), worker=1),
            dict(kind="quarantine", worker=1),
            dict(kind="commit", task_id=(0, 0), worker=1),
        )
        assert check_integrity_invariants(events).ok

    def test_quarantined_workers_helper(self):
        assert set(quarantined_workers(liar_quarantine_trace())) == {1}


class TestTaintRecompute:
    def test_violation_detected(self):
        report = check_integrity_invariants(taint_without_recompute_trace())
        assert report.has(TAINT_NOT_RECOMPUTED)

    def test_recommit_satisfies_the_taint(self):
        events = stream(
            dict(kind="assign", task_id=(0, 0), worker=0),
            dict(kind="commit", task_id=(0, 0), worker=0),
            dict(kind="taint-invalidate", task_id=(0, 0)),
            dict(kind="assign", task_id=(0, 0), epoch=1, worker=1),
            dict(kind="commit", task_id=(0, 0), epoch=1, worker=1),
        )
        assert check_integrity_invariants(events).ok

    def test_aborted_run_waives_trailing_taints(self):
        report = check_integrity_invariants(
            taint_without_recompute_trace(), aborted=True
        )
        assert report.ok

    def test_commit_before_the_taint_does_not_count(self):
        events = stream(
            dict(kind="commit", task_id=(0, 0), worker=0),
            dict(kind="commit", task_id=(0, 1), worker=0),
            dict(kind="taint-invalidate", task_id=(0, 0)),
        )
        report = check_integrity_invariants(events)
        assert report.has(TAINT_NOT_RECOMPUTED)


class TestCommitWithoutVerify:
    def test_violation_detected(self):
        events, metrics = unverified_commit_case()
        report = check_integrity_invariants(events, metrics=metrics)
        assert report.has(COMMIT_WITHOUT_VERIFY)

    def test_matching_counts_pass(self):
        events, _ = unverified_commit_case()
        metrics = {"counters": {"integrity.digests_verified": 3}}
        assert check_integrity_invariants(events, metrics=metrics).ok

    def test_rule_dormant_without_the_counter(self):
        events, _ = unverified_commit_case()
        assert check_integrity_invariants(events, metrics=None).ok
        assert check_integrity_invariants(events, metrics={"counters": {}}).ok

    def test_masterside_commits_exempt(self):
        # A replayed/arbiter commit has no assign record: not wire traffic.
        events = stream(
            dict(kind="commit", task_id=(0, 0), worker=-1),
            dict(kind="assign", task_id=(0, 1), worker=0),
            dict(kind="commit", task_id=(0, 1), worker=0),
        )
        metrics = {"counters": {"integrity.digests_verified": 1}}
        assert check_integrity_invariants(events, metrics=metrics).ok


class TestSelftest:
    def test_all_fixtures_detected(self):
        results = run_selftest()
        assert len(results) >= 12  # issue floor; currently 16
        missed = [name for name, _, detected in results if not detected]
        assert not missed, f"selftest blind to: {missed}"

    @pytest.mark.parametrize(
        "name",
        ["liar-quarantine-dispatch", "taint-never-recomputed", "commit-without-verify"],
    )
    def test_integrity_fixture_reports_only_its_own_code(self, name):
        code, runner = SELFTEST[name]
        report = runner()
        assert report.has(code)
        assert set(report.codes()) == {code}
