"""Lock-order lint (repro.check.lock_lint).

The instrumentation must be invisible when no session is active, record
acquisition-order inversions (ABBA) even when the deadlock never fires,
and flag blocking channel calls made under a lock.
"""

import threading

from repro.check import diagnostics as D
from repro.check.fixtures import abba_lock_report
from repro.check.lock_lint import (
    active_session,
    lock_lint_session,
    make_condition,
    make_lock,
    note_blocking,
)


class TestInactiveIsPlain:
    def test_make_lock_returns_plain_primitive(self):
        assert active_session() is None
        lock = make_lock("test.plain")
        assert isinstance(lock, type(threading.Lock()))

    def test_make_condition_returns_plain_condition(self):
        cond = make_condition("test.plain-cond")
        assert isinstance(cond, threading.Condition)
        with cond:
            cond.notify_all()

    def test_note_blocking_is_noop(self):
        note_blocking("nothing listens")  # must not raise


class TestSessions:
    def test_abba_cycle_detected(self):
        report = abba_lock_report()
        assert report.has(D.LOCK_CYCLE), report.summary()

    def test_consistent_order_is_clean(self):
        with lock_lint_session() as lint:
            a = make_lock("ordered.A")
            b = make_lock("ordered.B")

            def worker():
                with a:
                    with b:
                        pass

            threads = [threading.Thread(target=worker) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            report = lint.report()
        assert report.ok, report.summary()
        assert ("ordered.A", "ordered.B") in lint.edges()

    def test_blocking_call_under_lock_flagged(self):
        with lock_lint_session() as lint:
            lock = make_lock("holder")
            with lock:
                note_blocking("channel.recv")
            report = lint.report()
        assert report.has(D.BLOCKING_WHILE_LOCKED), report.summary()

    def test_blocking_call_without_lock_is_clean(self):
        with lock_lint_session() as lint:
            make_lock("unused")
            note_blocking("channel.recv")
            report = lint.report()
        assert report.ok, report.summary()

    def test_guard_lock_exempts_only_its_call(self):
        # A send guard (slave._send's pattern) exists to serialize
        # channel.send; holding it across that call must not flag, but
        # any *other* blocking call under it still does.
        with lock_lint_session() as lint:
            guard = make_lock("test.send-guard", guards=("channel.send",))
            with guard:
                note_blocking("channel.send")
            report = lint.report()
        assert report.ok, report.summary()
        with lock_lint_session() as lint:
            guard = make_lock("test.send-guard", guards=("channel.send",))
            with guard:
                note_blocking("channel.recv")
            report = lint.report()
        assert report.has(D.BLOCKING_WHILE_LOCKED), report.summary()

    def test_guard_lock_does_not_excuse_other_held_locks(self):
        with lock_lint_session() as lint:
            guard = make_lock("test.send-guard", guards=("channel.send",))
            other = make_lock("test.state")
            with other:
                with guard:
                    note_blocking("channel.send")
            report = lint.report()
        assert report.has(D.BLOCKING_WHILE_LOCKED), report.summary()

    def test_condition_wait_does_not_invent_edges(self):
        # Condition.wait/notify exercise the traced lock's acquire/release
        # around the internal waiter probe; a single condition used alone
        # must never produce an order edge, let alone a cycle.
        with lock_lint_session() as lint:
            cond = make_condition("solo.cond")

            def waiter():
                with cond:
                    cond.wait(timeout=0.2)

            t = threading.Thread(target=waiter)
            t.start()
            with cond:
                cond.notify_all()
            t.join()
            report = lint.report()
        assert report.ok, report.summary()

    def test_sessions_nest_and_restore(self):
        with lock_lint_session() as outer:
            with lock_lint_session() as inner:
                assert active_session() is inner
            assert active_session() is outer
        assert active_session() is None


class TestRuntimeUnderLint:
    def test_threads_backend_run_is_lint_clean(self):
        from repro import EasyHPS, RunConfig
        from repro.algorithms import EditDistance

        problem = EditDistance.random(30, 30, seed=2)
        config = RunConfig(
            nodes=3,
            threads_per_node=2,
            backend="threads",
            process_partition=10,
            thread_partition=5,
            poll_interval=0.005,
        )
        with lock_lint_session() as lint:
            run = EasyHPS(config).run(problem)
            report = lint.report()
        assert run.value.distance == problem.reference()
        assert not report.has(D.LOCK_CYCLE), report.summary()
        assert not report.has(D.BLOCKING_WHILE_LOCKED), report.summary()
        assert lint.edges() is not None
