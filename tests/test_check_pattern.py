"""Static pattern/partition verifier (repro.check.pattern_check).

Positive path: every built-in pattern and every bundled algorithm's whole
partition stack verifies clean. Negative path: each seeded structural
defect is rejected with its named diagnostic.
"""

import pytest

from repro.check import diagnostics as D
from repro.check.fixtures import (
    cyclic_pattern,
    data_gap_pattern,
    out_of_bounds_pattern,
)
from repro.check.pattern_check import check_partition, check_pattern
from repro.check.runner import (
    builtin_algorithm_cases,
    builtin_pattern_cases,
    check_algorithm,
    run_builtin_checks,
)
from repro.dag.library import IndependentGridPattern, WavefrontPattern
from repro.dag.partition import Partition, partition_pattern
from repro.utils.errors import CheckError

PATTERN_CASES = builtin_pattern_cases()
ALGO_CASES = builtin_algorithm_cases(size=24, seed=0)


class TestBuiltinsClean:
    @pytest.mark.parametrize("name", sorted(PATTERN_CASES))
    def test_library_pattern_verifies(self, name):
        report = check_pattern(PATTERN_CASES[name]())
        assert report.ok, report.summary()
        assert report.checked > 0

    @pytest.mark.parametrize("name", sorted(ALGO_CASES))
    def test_algorithm_stack_verifies(self, name):
        report = check_algorithm(ALGO_CASES[name]())
        assert report.ok, report.summary()

    def test_run_builtin_checks_all_ok(self):
        results = run_builtin_checks(algo_size=16)
        assert len(results) >= len(PATTERN_CASES) + len(ALGO_CASES) - 1
        bad = [name for name, report in results if not report.ok]
        assert not bad, bad


class TestSeededDefects:
    def test_cycle_detected(self):
        report = check_pattern(cyclic_pattern())
        assert not report.ok
        assert report.has(D.PATTERN_CYCLE), report.summary()

    def test_out_of_bounds_dep_detected(self):
        report = check_pattern(out_of_bounds_pattern())
        assert report.has(D.DEP_OUT_OF_BOUNDS), report.summary()

    def test_data_superset_violation_detected(self):
        report = check_pattern(data_gap_pattern())
        assert report.has(D.DATA_SUPERSET_VIOLATION), report.summary()

    def test_raise_if_failed(self):
        report = check_pattern(cyclic_pattern())
        with pytest.raises(CheckError):
            report.raise_if_failed()

    def test_partition_edge_lost_detected(self):
        # Doctor a wavefront partition so its coarse DAG claims the blocks
        # are independent: every cross-block cell dependency is then lost.
        good = partition_pattern(WavefrontPattern(12, 12), 4)
        bad = Partition(
            base=good.base,
            abstract=IndependentGridPattern(
                good.grid.n_block_rows, good.grid.n_block_cols
            ),
            grid=good.grid,
            kind=good.kind,
        )
        report = check_partition(bad)
        assert report.has(D.PARTITION_EDGE_LOST), report.summary()


class TestSampledPath:
    def test_large_pattern_uses_sampling(self):
        # 360k vertices: far past the exhaustive cutoff; must stay fast
        # and clean under the probing verifier.
        report = check_pattern(WavefrontPattern(600, 600), samples=64, seed=3)
        assert report.ok, report.summary()
        assert report.checked <= 600 * 600

    def test_method_hooks(self):
        pattern = WavefrontPattern(6, 6)
        assert pattern.check().ok
        assert partition_pattern(pattern, 3).check().ok
