"""The machine-checked wire-protocol spec and its analyses."""

from dataclasses import dataclass

import pytest

from repro.check import diagnostics as D
from repro.check.protocol import (
    build_protocol_spec,
    check_protocol_conformance,
    check_protocol_spec,
    conformance_cases,
    drop_transitions,
    strip_guard,
    wire_message_kinds,
)


@dataclass
class Ev:
    """Duck-typed stand-in for an ObsEvent."""

    seq: int
    kind: str
    task_id: object = None
    epoch: int = 0
    worker: int = -1
    scope: str = "task"


def stream(*specs):
    return [Ev(seq=i, **spec) for i, spec in enumerate(specs)]


class TestSpecStatics:
    def test_real_spec_is_clean(self):
        report = check_protocol_spec()
        assert report.ok, [d.message for d in report.diagnostics]
        assert report.checked > 40

    def test_vocabulary_matches_message_classes(self):
        spec = build_protocol_spec()
        assert set(spec.messages) == set(wire_message_kinds())

    def test_every_role_state_reachable(self):
        # Indirectly covered by the clean run; assert the analysis is
        # actually exercised by checking the counter moves per state.
        spec = build_protocol_spec()
        n_states = sum(len(r.states) for r in spec.roles)
        assert n_states >= 15

    def test_dropped_handler_flags_unhandled_message(self):
        spec = drop_transitions(build_protocol_spec(), "slave", "awaiting", "TaskAssign")
        report = check_protocol_spec(spec)
        assert report.has(D.PROTOCOL_UNHANDLED_MESSAGE)

    def test_disconnected_state_flags_unreachable(self):
        spec = drop_transitions(
            build_protocol_spec(), "slave", "computing", "compute-done"
        )
        report = check_protocol_spec(spec)
        assert report.has(D.PROTOCOL_UNREACHABLE_STATE)

    def test_stripped_verify_guard_flags_commit(self):
        spec = strip_guard(build_protocol_spec(), "digest-verified")
        report = check_protocol_spec(spec)
        assert report.has(D.PROTOCOL_COMMIT_WITHOUT_VERIFY)

    def test_phantom_message_flags_mismatch(self):
        from dataclasses import replace

        spec = build_protocol_spec()
        spec = replace(spec, messages=spec.messages + ("GhostPacket",))
        report = check_protocol_spec(spec)
        assert report.has(D.PROTOCOL_MESSAGE_MISMATCH)

    def test_surgery_helpers_do_not_mutate_input(self):
        spec = build_protocol_spec()
        n = len(spec.transitions)
        drop_transitions(spec, "slave", "awaiting", "TaskAssign")
        strip_guard(spec, "digest-verified")
        assert len(spec.transitions) == n
        assert check_protocol_spec(spec).ok


class TestStrictConformance:
    def test_clean_dispatch_cycle(self):
        events = stream(
            dict(kind="assign", task_id=(0, 0), worker=0),
            dict(kind="result", task_id=(0, 0), worker=0),
            dict(kind="commit", task_id=(0, 0), worker=0),
        )
        assert check_protocol_conformance(events).ok

    def test_commit_of_cancelled_epoch_flags(self):
        events = stream(
            dict(kind="assign", task_id=(0, 0), worker=0),
            dict(kind="redistribute", task_id=(0, 0)),
            dict(kind="commit", task_id=(0, 0), worker=0),
        )
        report = check_protocol_conformance(events)
        assert report.has(D.PROTOCOL_ILLEGAL_TRANSITION)

    def test_reassign_after_cancel_needs_fresh_epoch(self):
        ok = stream(
            dict(kind="assign", task_id=(0, 0), worker=0),
            dict(kind="redistribute", task_id=(0, 0)),
            dict(kind="assign", task_id=(0, 0), epoch=1, worker=1),
            dict(kind="commit", task_id=(0, 0), epoch=1, worker=1),
        )
        assert check_protocol_conformance(ok).ok
        stale = stream(
            dict(kind="assign", task_id=(0, 0), worker=0),
            dict(kind="redistribute", task_id=(0, 0)),
            dict(kind="assign", task_id=(0, 0), epoch=0, worker=1),
        )
        assert check_protocol_conformance(stale).has(D.PROTOCOL_ILLEGAL_TRANSITION)

    def test_stale_drop_is_legal_everywhere_settled(self):
        events = stream(
            dict(kind="assign", task_id=(0, 0), worker=0),
            dict(kind="redistribute", task_id=(0, 0)),
            dict(kind="assign", task_id=(0, 0), epoch=1, worker=1),
            dict(kind="commit", task_id=(0, 0), epoch=1, worker=1),
            dict(kind="stale-drop", task_id=(0, 0), epoch=0, worker=0),
        )
        assert check_protocol_conformance(events).ok

    def test_dispatch_to_retired_worker_flags(self):
        events = stream(
            dict(kind="quarantine", worker=1),
            dict(kind="assign", task_id=(0, 0), worker=1),
        )
        report = check_protocol_conformance(events)
        assert report.has(D.PROTOCOL_ILLEGAL_TRANSITION)

    def test_taint_invalidate_reopens_dispatch(self):
        events = stream(
            dict(kind="assign", task_id=(0, 0), worker=0),
            dict(kind="commit", task_id=(0, 0), worker=0),
            dict(kind="taint-invalidate", task_id=(0, 0)),
            dict(kind="assign", task_id=(0, 0), epoch=1, worker=1),
            dict(kind="commit", task_id=(0, 0), epoch=1, worker=1),
        )
        assert check_protocol_conformance(events).ok

    def test_subtask_scope_events_are_out_of_scope(self):
        # Thread-level (subtask) kinds share names with the task-level
        # protocol but belong to a different machine: never replayed.
        events = stream(
            dict(kind="assign", task_id=(0, 0), worker=0),
            dict(kind="commit", task_id=(0, 0), worker=0, scope="subtask"),
            dict(kind="commit", task_id=(0, 0), worker=0),
        )
        assert check_protocol_conformance(events).ok


class TestRelaxedConformance:
    def test_racy_record_order_tolerated(self):
        # FT thread logs the redistribute before the assign it chased;
        # relaxed mode must not flag the order, only real violations.
        events = stream(
            dict(kind="redistribute", task_id=(0, 0), epoch=0),
            dict(kind="assign", task_id=(0, 0), epoch=0, worker=0),
            dict(kind="assign", task_id=(0, 0), epoch=1, worker=1),
            dict(kind="commit", task_id=(0, 0), epoch=1, worker=1),
        )
        assert check_protocol_conformance(events, strict=False).ok

    def test_commit_of_redistributed_epoch_still_flags(self):
        events = stream(
            dict(kind="assign", task_id=(0, 0), worker=0),
            dict(kind="redistribute", task_id=(0, 0)),
            dict(kind="commit", task_id=(0, 0), worker=0),
        )
        report = check_protocol_conformance(events, strict=False)
        assert report.has(D.PROTOCOL_ILLEGAL_TRANSITION)

    def test_never_assigned_commit_flags(self):
        events = stream(dict(kind="commit", task_id=(0, 0), worker=0))
        report = check_protocol_conformance(events, strict=False)
        assert report.has(D.PROTOCOL_ILLEGAL_TRANSITION)

    def test_double_commit_without_taint_flags(self):
        events = stream(
            dict(kind="assign", task_id=(0, 0), worker=0),
            dict(kind="commit", task_id=(0, 0), worker=0),
            dict(kind="assign", task_id=(0, 0), epoch=1, worker=1),
            dict(kind="commit", task_id=(0, 0), epoch=1, worker=1),
        )
        report = check_protocol_conformance(events, strict=False)
        assert report.has(D.PROTOCOL_ILLEGAL_TRANSITION)


@pytest.mark.slow
class TestObservedRuns:
    def test_real_backends_conform(self):
        for name, report in conformance_cases(size=20, seed=0):
            assert report.ok, (name, [d.message for d in report.diagnostics])
            assert report.checked > 0
