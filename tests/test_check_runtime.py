"""Verify-enabled integration runs (RunConfig.verify).

Every backend executes a full schedule with the happens-before trace
validator armed; any ordering violation would raise CheckError instead
of returning. Fault-injection scenarios exercise the redistribution and
stale-epoch paths under validation.
"""

import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance, Nussinov
from repro.cluster.faults import FaultPlan, FaultRule
from repro.utils.errors import ConfigError


@pytest.fixture
def problem():
    return EditDistance.random(40, 40, seed=6)


def cfg(**kw):
    base = dict(
        nodes=3,
        threads_per_node=2,
        backend="threads",
        process_partition=10,
        thread_partition=5,
        poll_interval=0.005,
        verify=True,
    )
    base.update(kw)
    return RunConfig(**base)


class TestVerifiedRuns:
    def test_threads_backend(self, problem):
        run = EasyHPS(cfg()).run(problem)
        assert run.value.distance == problem.reference()

    def test_threads_backend_triangular(self):
        problem = Nussinov.random(30, seed=8)
        run = EasyHPS(cfg(process_partition=8, thread_partition=4)).run(problem)
        assert run.value.score == problem.reference()

    def test_simulated_backend(self, problem):
        config = RunConfig.experiment(3, 9, verify=True)
        run = EasyHPS(config).run(problem)
        assert run.report.makespan > 0

    @pytest.mark.slow
    def test_processes_backend(self, problem):
        run = EasyHPS(cfg(backend="processes")).run(problem)
        assert run.value.distance == problem.reference()


class TestVerifiedFaultTolerance:
    def test_threads_process_crash_verifies(self, problem):
        plan = FaultPlan([FaultRule("crash", (0, 0), 0)])
        run = EasyHPS(cfg(task_timeout=0.4, fault_plan=plan)).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.faults_recovered >= 1

    def test_threads_hang_stale_result_verifies(self, problem):
        plan = FaultPlan([FaultRule("hang", (0, 0), 0)])
        run = EasyHPS(
            cfg(task_timeout=0.4, hang_duration=0.9, fault_plan=plan)
        ).run(problem)
        assert run.value.distance == problem.reference()

    def test_thread_level_fault_verifies(self, problem):
        plan = FaultPlan([FaultRule("crash", (1, 0), 0)])
        run = EasyHPS(
            cfg(subtask_timeout=0.3, thread_fault_plan=plan)
        ).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.thread_restarts >= 1

    def test_simulated_crash_verifies(self, problem):
        config = RunConfig.experiment(
            3, 9, verify=True, task_timeout=5.0,
            fault_plan=FaultPlan([FaultRule("crash", (0, 0), 0)]),
        )
        run = EasyHPS(config).run(problem)
        assert run.report.faults_recovered >= 1

    def test_simulated_hang_verifies(self, problem):
        config = RunConfig.experiment(
            3, 9, verify=True, task_timeout=0.001,
            fault_plan=FaultPlan([FaultRule("hang", (0, 0), 0)]),
        )
        run = EasyHPS(config).run(problem)
        assert run.report.faults_recovered >= 1


class TestConfigValidation:
    def test_verify_defaults_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert RunConfig().verify is True
        monkeypatch.setenv("REPRO_VERIFY", "off")
        assert RunConfig().verify is False
        monkeypatch.delenv("REPRO_VERIFY")
        assert RunConfig().verify is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fault_plan": "nope"},
            {"thread_fault_plan": 3},
            {"verify": "yes"},
            {"cluster": object()},
        ],
    )
    def test_bad_config_types_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RunConfig(**kwargs)

    def test_bad_fault_rule_rejected(self):
        with pytest.raises(ConfigError):
            FaultRule("explode")
        with pytest.raises(ValueError):  # ConfigError subclasses ValueError
            FaultRule("crash", attempt=-1)
        with pytest.raises(ConfigError):
            FaultPlan.random(1.5)
        with pytest.raises(ConfigError):
            FaultPlan.random(True)
