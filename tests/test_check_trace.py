"""Happens-before trace validator (repro.check.trace_check).

Doctored traces over a 2x2 wavefront: each ordering violation the
fault-tolerance machinery could produce must surface with its named
diagnostic; a faithful schedule must verify clean.
"""

import pytest

from repro.check import diagnostics as D
from repro.check.fixtures import duplicate_commit_trace, early_commit_trace
from repro.check.trace_check import SchedEvent, TraceRecorder, check_trace
from repro.dag.library import WavefrontPattern


def ev(kind, task, epoch, seq, worker=0):
    return SchedEvent(kind=kind, task_id=task, epoch=epoch, worker=worker, seq=seq)


def clean_2x2_trace():
    """A faithful serialization of a 2x2 wavefront schedule."""
    return [
        ev("assign", (0, 0), 0, 0),
        ev("commit", (0, 0), 0, 1),
        ev("assign", (0, 1), 0, 2),
        ev("assign", (1, 0), 0, 3, worker=1),
        ev("commit", (1, 0), 0, 4, worker=1),
        ev("commit", (0, 1), 0, 5),
        ev("assign", (1, 1), 0, 6),
        ev("commit", (1, 1), 0, 7),
    ]


class TestCleanTraces:
    def test_faithful_schedule_passes(self):
        report = check_trace(clean_2x2_trace(), WavefrontPattern(2, 2))
        assert report.ok, report.summary()

    def test_redistribution_with_fresh_epoch_passes(self):
        pattern = WavefrontPattern(1, 2)
        events = [
            ev("assign", (0, 0), 0, 0),
            ev("commit", (0, 0), 0, 1),
            ev("assign", (0, 1), 0, 2),
            ev("redistribute", (0, 1), 0, 3),
            ev("assign", (0, 1), 1, 4, worker=1),
            ev("commit", (0, 1), 1, 5, worker=1),
            ev("stale-drop", (0, 1), 0, 6),
        ]
        report = check_trace(events, pattern)
        assert report.ok, report.summary()


class TestViolations:
    def test_early_assign(self):
        events = [
            ev("assign", (0, 0), 0, 0),
            # (1, 1) dispatched before any dependency committed:
            ev("assign", (1, 1), 0, 1, worker=1),
        ]
        report = check_trace(events, WavefrontPattern(2, 2), require_complete=False)
        assert report.has(D.EARLY_ASSIGN), report.summary()

    def test_early_commit_fixture(self):
        report = check_trace(*early_commit_trace(), require_complete=False)
        assert report.has(D.EARLY_COMMIT), report.summary()

    def test_duplicate_commit_fixture(self):
        report = check_trace(*duplicate_commit_trace(), require_complete=False)
        assert report.has(D.DUPLICATE_COMMIT), report.summary()

    def test_stale_commit_after_redistribution(self):
        pattern = WavefrontPattern(1, 1)
        events = [
            ev("assign", (0, 0), 0, 0),
            ev("redistribute", (0, 0), 0, 1),
            ev("assign", (0, 0), 1, 2),
            # Epoch 0 was cancelled; its commit must be flagged stale:
            ev("commit", (0, 0), 0, 3),
            ev("commit", (0, 0), 1, 4),
        ]
        report = check_trace(events, pattern, require_complete=False)
        assert report.has(D.STALE_COMMIT), report.summary()

    def test_lost_update(self):
        events = [ev("assign", (0, 0), 0, 0), ev("commit", (0, 0), 0, 1)]
        report = check_trace(events, WavefrontPattern(1, 2))
        assert report.has(D.LOST_UPDATE), report.summary()

    def test_unknown_task(self):
        events = [ev("assign", (7, 7), 0, 0)]
        report = check_trace(events, WavefrontPattern(2, 2), require_complete=False)
        assert report.has(D.UNKNOWN_TASK), report.summary()


class TestRecorder:
    def test_sequence_numbers_are_dense(self):
        rec = TraceRecorder()
        rec.record("assign", (0, 0), 0, worker=2)
        rec.record("commit", (0, 0), 0, worker=2)
        events = rec.events()
        assert [e.seq for e in events] == [0, 1]
        assert events[0].worker == 2
        assert len(rec) == 2

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SchedEvent(kind="teleport", task_id=(0, 0), epoch=0)
