"""Tests for the command-line interface."""

import pytest

from repro.cli import ALGORITHMS, _register_algorithms, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algo == "edit-distance"
        assert args.backend == "threads"
        assert args.nodes == 3

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--cores", "30"])
        assert args.cores == 30
        assert not args.gantt


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "backends" in out
        assert "swgg" in out
        assert "floyd-warshall" in out

    def test_run_serial(self, capsys):
        assert main(["run", "--algo", "lcs", "--size", "40", "--backend", "serial",
                     "--nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "lcs via serial" in out
        assert "result:" in out

    def test_run_threads(self, capsys):
        assert main(["run", "--algo", "edit-distance", "--size", "50"]) == 0
        assert "edit-distance via threads" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--algo", "nussinov", "--size", "400",
                     "--nodes", "3", "--cores", "11"]) == 0
        assert "simulated" in capsys.readouterr().out

    def test_simulate_with_gantt(self, capsys):
        assert main(["simulate", "--algo", "swgg", "--size", "400",
                     "--nodes", "3", "--cores", "11", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "node  0 |" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--algo", "edit-distance", "--size", "80",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "fitted rate" in out
        assert "calibrated NodeSpec" in out

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(["run", "--algo", "quicksort"])

    def test_registry_factories_produce_problems(self):
        from repro.algorithms.problem import DPProblem

        _register_algorithms()
        for name, factory in ALGORITHMS.items():
            problem = factory(12, 0)
            assert isinstance(problem, DPProblem), name


class TestChaosCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.seeds == 10
        assert args.backend is None  # resolved to (simulated, threads) later

    def test_small_campaign_exits_zero(self, capsys):
        assert main(["chaos", "--seeds", "2", "--backend", "simulated",
                     "--size", "32"]) == 0
        out = capsys.readouterr().out
        assert "invariant held" in out

    def test_quiet_suppresses_per_run_lines(self, capsys):
        assert main(["chaos", "--seeds", "1", "--backend", "simulated",
                     "--size", "32", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "faults injected," not in out.splitlines()[0]  # no per-run lines
        assert out.startswith("chaos campaign:")

    def test_fault_exhaustion_is_a_documented_exit_code(self, capsys, monkeypatch):
        # A clean abort must exit with code 3 and a message, not a traceback.
        import repro.cli as cli
        from repro.utils.errors import FaultToleranceExhausted

        def boom(args):
            raise FaultToleranceExhausted("all workers lost")

        monkeypatch.setitem(
            vars(cli), "cmd_run", boom
        )
        # Re-wire the parser default to the patched function.
        parser = cli.build_parser()
        args = parser.parse_args(["run", "--size", "20"])
        args.fn = boom
        monkeypatch.setattr(cli, "build_parser", lambda: _FixedParser(args))
        assert cli.main(["run", "--size", "20"]) == cli.EXIT_FAULT_EXHAUSTED == 3
        err = capsys.readouterr().err
        assert "fault tolerance exhausted" in err
        assert "Traceback" not in err


class _FixedParser:
    def __init__(self, args):
        self._args = args

    def parse_args(self, argv=None):
        return self._args
