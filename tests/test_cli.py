"""Tests for the command-line interface."""

import pytest

from repro.cli import ALGORITHMS, _register_algorithms, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algo == "edit-distance"
        assert args.backend == "threads"
        assert args.nodes == 3

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--cores", "30"])
        assert args.cores == 30
        assert not args.gantt


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "backends" in out
        assert "swgg" in out
        assert "floyd-warshall" in out

    def test_run_serial(self, capsys):
        assert main(["run", "--algo", "lcs", "--size", "40", "--backend", "serial",
                     "--nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "lcs via serial" in out
        assert "result:" in out

    def test_run_threads(self, capsys):
        assert main(["run", "--algo", "edit-distance", "--size", "50"]) == 0
        assert "edit-distance via threads" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--algo", "nussinov", "--size", "400",
                     "--nodes", "3", "--cores", "11"]) == 0
        assert "simulated" in capsys.readouterr().out

    def test_simulate_with_gantt(self, capsys):
        assert main(["simulate", "--algo", "swgg", "--size", "400",
                     "--nodes", "3", "--cores", "11", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "node  0 |" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--algo", "edit-distance", "--size", "80",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "fitted rate" in out
        assert "calibrated NodeSpec" in out

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(["run", "--algo", "quicksort"])

    def test_registry_factories_produce_problems(self):
        from repro.algorithms.problem import DPProblem

        _register_algorithms()
        for name, factory in ALGORITHMS.items():
            problem = factory(12, 0)
            assert isinstance(problem, DPProblem), name
