"""Unit tests for the simulated cluster substrate."""

import pytest

from repro.cluster.faults import FaultPlan, FaultRule
from repro.cluster.machine import NodeSpec
from repro.cluster.network import GIGABIT_ETHERNET, INFINIBAND_QDR, LinkModel
from repro.cluster.simcore import EventQueue, SimulationError
from repro.cluster.topology import ClusterSpec, experiment_layout
from repro.utils.errors import ConfigError


class TestEventQueue:
    def test_runs_in_time_order(self):
        evq = EventQueue()
        seen = []
        evq.at(2.0, lambda: seen.append("b"))
        evq.at(1.0, lambda: seen.append("a"))
        evq.at(3.0, lambda: seen.append("c"))
        evq.run()
        assert seen == ["a", "b", "c"]
        assert evq.now == 3.0

    def test_fifo_tie_break(self):
        evq = EventQueue()
        seen = []
        for tag in "xyz":
            evq.at(1.0, lambda tag=tag: seen.append(tag))
        evq.run()
        assert seen == ["x", "y", "z"]

    def test_after_and_nested_scheduling(self):
        evq = EventQueue()
        seen = []

        def first():
            seen.append(("first", evq.now))
            evq.after(0.5, lambda: seen.append(("second", evq.now)))

        evq.at(1.0, first)
        evq.run()
        assert seen == [("first", 1.0), ("second", 1.5)]

    def test_cancel(self):
        evq = EventQueue()
        seen = []
        h = evq.at(1.0, lambda: seen.append("cancelled"))
        evq.at(2.0, lambda: seen.append("kept"))
        evq.cancel(h)
        evq.run()
        assert seen == ["kept"]

    def test_run_until(self):
        evq = EventQueue()
        seen = []
        evq.at(1.0, lambda: seen.append(1))
        evq.at(5.0, lambda: seen.append(5))
        evq.run(until=2.0)
        assert seen == [1]
        assert evq.now == 2.0
        evq.run()
        assert seen == [1, 5]

    def test_past_scheduling_rejected(self):
        evq = EventQueue()
        evq.at(1.0, lambda: evq.at(0.5, lambda: None))
        with pytest.raises(SimulationError):
            evq.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().after(-1.0, lambda: None)

    def test_runaway_guard(self):
        evq = EventQueue()

        def reschedule():
            evq.after(1.0, reschedule)

        evq.at(0.0, reschedule)
        with pytest.raises(SimulationError, match="runaway"):
            evq.run(max_events=100)


class TestLinkModel:
    def test_transfer_time(self):
        link = LinkModel(latency=1e-3, bandwidth=1e6)
        assert link.transfer_time(0) == 1e-3
        assert link.transfer_time(1e6) == pytest.approx(1.001)

    def test_presets_sane(self):
        assert INFINIBAND_QDR.bandwidth > GIGABIT_ETHERNET.bandwidth
        assert INFINIBAND_QDR.latency < GIGABIT_ETHERNET.latency

    def test_validation(self):
        with pytest.raises(ConfigError):
            LinkModel(latency=-1, bandwidth=1)
        with pytest.raises(ConfigError):
            LinkModel(latency=0, bandwidth=0)
        with pytest.raises(ValueError):
            INFINIBAND_QDR.transfer_time(-5)


class TestNodeSpec:
    def test_efficiency_decreases_with_threads(self):
        n = NodeSpec(threads=11, contention=0.02)
        assert n.thread_efficiency(1) == 1.0
        assert n.thread_efficiency(11) == pytest.approx(1 / 1.2)
        assert n.thread_efficiency(2) > n.thread_efficiency(8)

    def test_effective_rate_sublinear_but_monotone(self):
        n = NodeSpec(threads=11, contention=0.05)
        rates = [n.effective_rate(t) for t in range(1, 12)]
        assert all(b > a for a, b in zip(rates, rates[1:]))
        assert rates[10] < 11 * rates[0]

    def test_compute_time(self):
        n = NodeSpec(threads=4, flops_per_second=100.0, contention=0.0)
        assert n.compute_time(50.0) == 0.5

    def test_validation(self):
        with pytest.raises(ConfigError):
            NodeSpec(threads=0)
        with pytest.raises(ValueError):
            NodeSpec(threads=2).thread_efficiency(0)
        with pytest.raises(ConfigError):
            NodeSpec(threads=2).compute_time(-1.0)


class TestClusterSpec:
    def test_core_accounting_round_trip(self):
        # Experiment_X_Y: Y = 2X - 1 + ct_total.
        spec = experiment_layout(4, 22)
        assert spec.total_nodes == 4
        assert spec.total_computing_threads == 22 - 2 * 4 + 1
        assert spec.total_cores == 22

    def test_uneven_split_round_robin(self):
        spec = experiment_layout(3, 10)  # 5 threads over 2 nodes
        assert [n.threads for n in spec.compute_nodes] == [3, 2]

    def test_paper_ranges_feasible(self):
        # The exact experiment ranges of Section VI.
        for nodes, lo, hi in [(2, 4, 14), (3, 7, 27), (4, 10, 40), (5, 13, 53)]:
            experiment_layout(nodes, lo)
            experiment_layout(nodes, hi)

    def test_too_few_cores_rejected(self):
        with pytest.raises(ConfigError):
            experiment_layout(4, 9)

    def test_thread_cap_enforced(self):
        with pytest.raises(ConfigError, match="cap"):
            experiment_layout(2, 15)  # would need 12 threads on one node

    def test_needs_computing_node(self):
        with pytest.raises(ConfigError):
            experiment_layout(1, 10)
        with pytest.raises(ConfigError):
            ClusterSpec(compute_nodes=())


class TestFaultPlan:
    def test_rule_matching(self):
        rule = FaultRule("crash", (1, 2), attempt=1)
        assert rule.matches((1, 2), 1)
        assert not rule.matches((1, 2), 0)
        assert not rule.matches((0, 0), 1)

    def test_wildcard_task(self):
        rule = FaultRule("hang", None, attempt=0)
        assert rule.matches((5, 5), 0)

    def test_plan_lookup(self):
        plan = FaultPlan([FaultRule("crash", (0, 0), 0), FaultRule("hang", (1, 1), 2)])
        assert plan.lookup((0, 0), 0).kind == "crash"
        assert plan.lookup((0, 0), 1) is None
        assert plan.lookup((1, 1), 2).kind == "hang"
        assert bool(plan)

    def test_none_plan_is_falsy(self):
        assert not FaultPlan.none()
        assert FaultPlan.none().lookup((0, 0), 0) is None

    def test_random_plan_deterministic_and_memoized(self):
        p1 = FaultPlan.random(0.5, seed=3)
        first = {t: p1.lookup((t, 0), 0) for t in range(20)}
        again = {t: p1.lookup((t, 0), 0) for t in range(20)}
        assert first == again
        hits = sum(1 for v in first.values() if v is not None)
        assert 0 < hits < 20

    def test_random_plan_only_first_attempt(self):
        p = FaultPlan.random(1.0, seed=0)
        assert p.lookup((0, 0), 0) is not None
        assert p.lookup((0, 0), 1) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultRule("explode")
        with pytest.raises(ValueError):
            FaultRule("crash", attempt=-1)
        with pytest.raises(ValueError):
            FaultPlan.random(1.5)
