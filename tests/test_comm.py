"""Unit tests for protocol messages, serialization accounting, transports."""

import pickle
import threading

import numpy as np
import pytest

from repro.comm.messages import EndSignal, IdleSignal, TaskAssign, TaskResult
from repro.comm.serialization import MESSAGE_ENVELOPE_BYTES, message_nbytes, payload_nbytes
from repro.comm.transport import (
    ChannelClosed,
    ChannelTimeout,
    channel_pair,
    pipe_channel_pair,
)
from repro.utils.errors import TransportError


class TestMessages:
    def test_all_messages_pickle(self):
        msgs = [
            IdleSignal(3),
            TaskAssign((1, 2), 0, {"x": np.arange(5)}),
            TaskResult((1, 2), 0, 3, {"block": np.eye(2)}, elapsed=0.5),
            EndSignal(),
        ]
        for m in msgs:
            clone = pickle.loads(pickle.dumps(m))
            assert type(clone) is type(m)

    def test_task_assign_equality_ignores_payload(self):
        a = TaskAssign((0, 0), 1, {"x": np.arange(3)})
        b = TaskAssign((0, 0), 1, {"x": np.arange(9)})
        assert a == b  # identity is (task_id, epoch); payload is data


class TestPayloadAccounting:
    def test_ndarray(self):
        assert payload_nbytes(np.zeros((10, 10))) == 800

    def test_nested_dict(self):
        p = {"a": np.zeros(4), "b": [np.zeros(2), "xyz"], "n": 7}
        # arrays (32 + 16) + "xyz" (3) + int (8) + keys "a","b","n" (3)
        assert payload_nbytes(p) == 32 + 16 + 3 + 8 + 3

    def test_scalars_and_none(self):
        assert payload_nbytes(None) == 0
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(True) == 8
        assert payload_nbytes(b"abcd") == 4

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            payload_nbytes(object())

    def test_message_nbytes(self):
        idle = IdleSignal(0)
        assert message_nbytes(idle) == MESSAGE_ENVELOPE_BYTES
        assign = TaskAssign((0, 0), 0, {"x": np.zeros(100)})
        assert message_nbytes(assign) == MESSAGE_ENVELOPE_BYTES + 800 + 1


class TestQueueChannel:
    def test_round_trip(self):
        a, b = channel_pair()
        a.send(IdleSignal(1))
        msg = b.recv(timeout=1.0)
        assert msg == IdleSignal(1)

    def test_duplex(self):
        a, b = channel_pair()
        a.send(IdleSignal(1))
        b.send(EndSignal())
        assert isinstance(a.recv(timeout=1.0), EndSignal)
        assert isinstance(b.recv(timeout=1.0), IdleSignal)

    def test_timeout(self):
        a, _ = channel_pair()
        with pytest.raises(ChannelTimeout):
            a.recv(timeout=0.01)

    def test_closed_channel_rejects(self):
        a, _ = channel_pair()
        a.close()
        with pytest.raises(ChannelClosed):
            a.send(IdleSignal(0))
        with pytest.raises(ChannelClosed):
            a.recv(timeout=0.01)

    def test_only_messages_allowed(self):
        a, _ = channel_pair()
        with pytest.raises(TransportError):
            a.send("not a message")

    def test_byte_counters(self):
        a, b = channel_pair()
        a.send(TaskAssign((0, 0), 0, {"x": np.zeros(10)}))
        b.recv(timeout=1.0)
        assert a.sent_messages == 1
        assert a.sent_bytes == MESSAGE_ENVELOPE_BYTES + 80 + 1
        assert b.received_messages == 1
        assert b.received_bytes == a.sent_bytes

    def test_concurrent_producers(self):
        a, b = channel_pair()

        def produce(k):
            for _ in range(50):
                b.send(IdleSignal(k))

        threads = [threading.Thread(target=produce, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        got = [a.recv(timeout=1.0) for _ in range(200)]
        for t in threads:
            t.join()
        assert len(got) == 200


class TestChannelInstrumentation:
    def test_uninstrumented_channel_uses_shared_null_recorder(self):
        from repro.obs.recorder import NULL_RECORDER

        a, b = channel_pair()
        assert a._obs is NULL_RECORDER
        assert b._obs is NULL_RECORDER

    def test_send_recv_emit_message_events(self):
        from repro.obs.recorder import EventRecorder

        rec = EventRecorder()
        a, b = channel_pair()
        a.instrument(rec, endpoint="slave0", node=0)
        b.instrument(rec, endpoint="master", node=0)

        assign = TaskAssign((2, 3), 1, {"x": np.zeros(10)})
        a.send(assign)
        b.recv(timeout=1.0)
        b.send(IdleSignal(0))
        a.recv(timeout=1.0)

        events = rec.events()
        assert [e.kind for e in events] == ["msg-send", "msg-recv", "msg-send", "msg-recv"]
        assert all(e.scope == "message" for e in events)
        sent = events[0]
        assert sent.task_id == (2, 3) and sent.epoch == 1
        assert sent.data["endpoint"] == "slave0"
        assert sent.data["type"] == "TaskAssign"
        assert sent.data["nbytes"] == message_nbytes(assign)
        # The receiving endpoint sees the same wire size.
        assert events[1].data["nbytes"] == sent.data["nbytes"]
        assert events[1].data["endpoint"] == "master"

    def test_publish_metrics_per_endpoint(self):
        from repro.obs.metrics import MetricsRegistry

        a, b = channel_pair()
        a.endpoint = "slave0"
        assign = TaskAssign((0, 0), 0, {"x": np.zeros(10)})
        a.send(assign)
        b.recv(timeout=1.0)
        b.send(IdleSignal(0))
        a.recv(timeout=1.0)

        registry = MetricsRegistry()
        a.publish_metrics(registry)
        snap = registry.snapshot()["counters"]
        assert snap["comm.messages_sent{endpoint=slave0}"] == 1
        assert snap["comm.messages_received{endpoint=slave0}"] == 1
        assert snap["comm.bytes_sent{endpoint=slave0}"] == message_nbytes(assign)
        assert snap["comm.bytes_received{endpoint=slave0}"] == message_nbytes(IdleSignal(0))

    def test_counters_match_event_stream_totals(self):
        from repro.obs.recorder import EventRecorder

        rec = EventRecorder()
        a, b = channel_pair()
        a.instrument(rec, endpoint="slave0")
        for k in range(5):
            a.send(IdleSignal(k))
            b.recv(timeout=1.0)
        sent_nbytes = sum(
            e.data["nbytes"] for e in rec.events() if e.kind == "msg-send"
        )
        assert a.sent_messages == 5
        assert a.sent_bytes == sent_nbytes


class TestPipeChannel:
    def test_round_trip_across_endpoints(self):
        a, b = pipe_channel_pair()
        payload = {"block": np.arange(12).reshape(3, 4)}
        a.send(TaskResult((1, 1), 0, 2, payload))
        msg = b.recv(timeout=2.0)
        assert isinstance(msg, TaskResult)
        assert np.array_equal(msg.outputs["block"], payload["block"])
        a.close()
        b.close()

    def test_timeout(self):
        a, b = pipe_channel_pair()
        with pytest.raises(ChannelTimeout):
            a.recv(timeout=0.01)
        a.close()
        b.close()

    def test_peer_close_detected(self):
        a, b = pipe_channel_pair()
        b.close()
        with pytest.raises((ChannelClosed, ChannelTimeout)):
            a.recv(timeout=0.2)
        a.close()
