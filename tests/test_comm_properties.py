"""Property-based tests of the communication layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.messages import IdleSignal, TaskAssign, TaskResult
from repro.comm.serialization import MESSAGE_ENVELOPE_BYTES, message_nbytes, payload_nbytes
from repro.comm.transport import channel_pair

# Recursive payloads of the kinds the runtime actually ships.
scalars = st.one_of(
    st.integers(-10**6, 10**6),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.text(max_size=20),
    st.binary(max_size=20),
)
arrays = st.integers(0, 50).map(lambda n: np.zeros(n))
payloads = st.recursive(
    st.one_of(scalars, arrays),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=5), children, max_size=4),
    ),
    max_leaves=12,
)


@given(p=payloads)
@settings(max_examples=60, deadline=None)
def test_payload_size_nonnegative_and_finite(p):
    size = payload_nbytes(p)
    assert isinstance(size, int)
    assert size >= 0


@given(a=payloads, b=payloads)
@settings(max_examples=40, deadline=None)
def test_payload_size_additive_over_lists(a, b):
    assert payload_nbytes([a, b]) == payload_nbytes(a) + payload_nbytes(b)


@given(p=payloads, key=st.text(min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_dict_wrapper_adds_key_bytes(p, key):
    assert payload_nbytes({key: p}) == payload_nbytes(key) + payload_nbytes(p)


@given(n=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_assign_size_tracks_array_payload(n):
    msg = TaskAssign((0, 0), 0, {"x": np.zeros(n)})
    assert message_nbytes(msg) == MESSAGE_ENVELOPE_BYTES + 8 * n + 1


@given(seq=st.lists(st.sampled_from(["idle", "result"]), min_size=1, max_size=30))
@settings(max_examples=30, deadline=None)
def test_channel_preserves_order_and_counts(seq):
    a, b = channel_pair()
    sent = []
    for i, kind in enumerate(seq):
        msg = IdleSignal(i) if kind == "idle" else TaskResult((i, 0), 0, 0, {})
        a.send(msg)
        sent.append(msg)
    received = [b.recv(timeout=1.0) for _ in seq]
    assert received == sent
    assert a.sent_messages == b.received_messages == len(seq)
    assert a.sent_bytes == b.received_bytes


def test_numpy_scalars_are_sized():
    assert payload_nbytes(np.float64(1.5)) == 8
    assert payload_nbytes(np.int32(7)) == 8


def test_memoryview_sized():
    assert payload_nbytes(memoryview(b"abcdef")) == 6
