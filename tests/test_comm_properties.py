"""Property-based tests of the communication layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.messages import IdleSignal, TaskAssign, TaskResult
from repro.comm.serialization import MESSAGE_ENVELOPE_BYTES, message_nbytes, payload_nbytes
from repro.comm.transport import channel_pair

# Recursive payloads of the kinds the runtime actually ships.
scalars = st.one_of(
    st.integers(-10**6, 10**6),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.text(max_size=20),
    st.binary(max_size=20),
)
arrays = st.integers(0, 50).map(lambda n: np.zeros(n))
payloads = st.recursive(
    st.one_of(scalars, arrays),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=5), children, max_size=4),
    ),
    max_leaves=12,
)


@given(p=payloads)
@settings(max_examples=60, deadline=None)
def test_payload_size_nonnegative_and_finite(p):
    size = payload_nbytes(p)
    assert isinstance(size, int)
    assert size >= 0


@given(a=payloads, b=payloads)
@settings(max_examples=40, deadline=None)
def test_payload_size_additive_over_lists(a, b):
    assert payload_nbytes([a, b]) == payload_nbytes(a) + payload_nbytes(b)


@given(p=payloads, key=st.text(min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_dict_wrapper_adds_key_bytes(p, key):
    assert payload_nbytes({key: p}) == payload_nbytes(key) + payload_nbytes(p)


@given(n=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_assign_size_tracks_array_payload(n):
    msg = TaskAssign((0, 0), 0, {"x": np.zeros(n)})
    assert message_nbytes(msg) == MESSAGE_ENVELOPE_BYTES + 8 * n + 1


@given(seq=st.lists(st.sampled_from(["idle", "result"]), min_size=1, max_size=30))
@settings(max_examples=30, deadline=None)
def test_channel_preserves_order_and_counts(seq):
    a, b = channel_pair()
    sent = []
    for i, kind in enumerate(seq):
        msg = IdleSignal(i) if kind == "idle" else TaskResult((i, 0), 0, 0, {})
        a.send(msg)
        sent.append(msg)
    received = [b.recv(timeout=1.0) for _ in seq]
    assert received == sent
    assert a.sent_messages == b.received_messages == len(seq)
    assert a.sent_bytes == b.received_bytes


def test_numpy_scalars_are_sized():
    assert payload_nbytes(np.float64(1.5)) == 8
    assert payload_nbytes(np.int32(7)) == 8


def test_memoryview_sized():
    assert payload_nbytes(memoryview(b"abcdef")) == 6


# -- protocol-5 out-of-band round-trip (zero-copy data plane) ----------------------

from repro.comm.serialization import content_digest, oob_dumps, oob_loads  # noqa: E402

_OOB_DTYPES = ["u1", "i2", "i4", "i8", "f4", "f8", "c8", "?"]


@st.composite
def oob_arrays(draw):
    """Arbitrary dtypes, shapes, and strides — including zero-size blocks
    and non-contiguous views, the shapes the block transport must not
    silently canonicalize differently from the in-band path."""
    dtype = np.dtype(draw(st.sampled_from(_OOB_DTYPES)))
    shape = tuple(draw(st.lists(st.integers(0, 5), min_size=0, max_size=3)))
    n = int(np.prod(shape, dtype=np.int64)) if shape else 1
    base = np.arange(max(n, 1), dtype=np.int64) % 251
    arr = base.astype(dtype)[:n].reshape(shape)
    variant = draw(st.sampled_from(["c", "f", "strided", "transposed"]))
    if variant == "f" and arr.ndim >= 2:
        arr = np.asfortranarray(arr)
    elif variant == "strided" and arr.ndim >= 1 and arr.shape[0] >= 2:
        arr = arr[::2]
    elif variant == "transposed" and arr.ndim >= 2:
        arr = arr.T
    return arr


@given(arr=oob_arrays())
@settings(max_examples=120, deadline=None)
def test_oob_roundtrip_preserves_array(arr):
    payload, buffers = oob_dumps({"x": arr})
    out = oob_loads(payload, buffers)["x"]
    assert out.dtype == arr.dtype
    assert out.shape == arr.shape
    assert np.array_equal(out, arr)


@given(arr=oob_arrays())
@settings(max_examples=120, deadline=None)
def test_oob_digest_matches_inband(arr):
    """The PR 5 canonical digest is transport-invariant: in-band pickling
    and the out-of-band buffer path must describe identical content."""
    before = content_digest({"x": arr})
    payload, buffers = oob_dumps({"x": arr})
    after = content_digest(oob_loads(payload, buffers))
    assert after == before


@given(arr=oob_arrays())
@settings(max_examples=60, deadline=None)
def test_oob_accepts_memoryview_buffers(arr):
    """Receivers hand back segment views, not bytes copies."""
    payload, buffers = oob_dumps({"x": arr})
    out = oob_loads(payload, [memoryview(b) for b in buffers])["x"]
    assert np.array_equal(out, arr)
    assert content_digest({"x": out}) == content_digest({"x": arr})


@given(arr=oob_arrays(), key=st.text(min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_oob_roundtrip_message_payload(arr, key):
    """Whole TaskResult envelopes survive the split-stream round trip."""
    msg = TaskResult((1, 2), 3, 0, {key: arr, "scalar": 7})
    out = oob_loads(*oob_dumps(msg))
    assert out.task_id == msg.task_id
    assert out.outputs["scalar"] == 7
    assert np.array_equal(out.outputs[key], arr)


@given(n=st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_oob_zero_size_blocks(n):
    arr = np.empty((n, 0), dtype=np.float64)
    payload, buffers = oob_dumps({"x": arr})
    out = oob_loads(payload, buffers)["x"]
    assert out.shape == (n, 0)
    assert content_digest({"x": out}) == content_digest({"x": arr})
