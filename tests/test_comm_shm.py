"""Unit tests for the zero-copy shared-memory block transport.

Exercises :mod:`repro.comm.shm` directly — BlockStore park/release
bookkeeping, attach-side rehydration, digest transparency, the leak
sweep, and the ShmChannel encode/decode layer over a real channel pair —
without spinning up the processes backend.
"""

import numpy as np
import pytest

from repro.comm.messages import (
    BatchAssign,
    BatchResult,
    BlockRef,
    IdleSignal,
    TaskAssign,
    TaskResult,
)
from repro.comm.serialization import content_digest
from repro.comm.shm import (
    SHM_MIN_BYTES,
    BlockStore,
    ShmChannel,
    attach_copy,
    leaked_segments,
    run_prefix,
    sweep_segments,
)
from repro.comm.transport import ChannelTimeout, channel_pair


@pytest.fixture
def store():
    s = BlockStore(run_prefix())
    yield s
    s.sweep()
    sweep_segments(s.prefix)
    assert leaked_segments(s.prefix) == []


def big(seed=0, shape=(64, 64)):
    """An array comfortably above the inline threshold."""
    arr = np.random.default_rng(seed).standard_normal(shape)
    assert arr.nbytes >= SHM_MIN_BYTES
    return arr


class TestBlockStore:
    def test_park_attach_roundtrip_bitwise(self, store):
        arr = big()
        ref = store.park(arr)
        assert isinstance(ref, BlockRef)
        out = attach_copy(ref)
        assert out.dtype == arr.dtype and out.shape == arr.shape
        assert np.array_equal(out, arr)
        assert content_digest(out) == content_digest(arr)

    def test_receiver_unlink_reclaims_segment(self, store):
        ref = store.park(big())
        attach_copy(ref)
        assert leaked_segments(store.prefix) == []
        with pytest.raises((FileNotFoundError, OSError)):
            attach_copy(ref)  # second attach: segment is gone

    def test_noncontiguous_and_fortran_views(self, store):
        base = big(1, (64, 128))
        for arr in (base[::2], base.T, np.asfortranarray(base)):
            out = attach_copy(store.park(arr))
            assert np.array_equal(out, arr)

    def test_zero_size_block(self, store):
        ref = store.park(np.empty((0, 5)))
        out = attach_copy(ref)
        assert out.shape == (0, 5) and out.nbytes == 0

    def test_release_owner_reclaims_undelivered(self, store):
        store.park(big(0), owner=(0, 0))
        store.park(big(1), owner=(0, 0))
        store.park(big(2), owner=(1, 1))
        assert len(store) == 3
        assert store.release_owner((0, 0)) == 2
        assert len(store) == 1
        assert len(leaked_segments(store.prefix)) == 1  # (1, 1) still parked

    def test_sweep_is_idempotent(self, store):
        store.park(big())
        assert store.sweep() == 1
        assert store.sweep() == 0
        assert leaked_segments(store.prefix) == []

    def test_sweep_segments_catches_untracked_orphans(self, store):
        ref = store.park(big())
        store.forget(ref.segment)  # store no longer remembers it
        assert store.sweep() == 0
        assert sweep_segments(store.prefix) == 1
        assert leaked_segments(store.prefix) == []


def shm_pair(master_store, slave_store):
    a, b = channel_pair()
    return ShmChannel(a, master_store), ShmChannel(b, slave_store)


class TestShmChannel:
    def test_large_assign_rides_segment(self, store):
        slave_store = BlockStore(run_prefix())
        a, b = shm_pair(store, slave_store)
        arr = big()
        a.send(TaskAssign((0, 0), 0, {"x": arr, "tiny": np.zeros(2)}))
        msg = b.recv(timeout=1.0)
        assert np.array_equal(msg.inputs["x"], arr)
        assert np.array_equal(msg.inputs["tiny"], np.zeros(2))
        # The wire saw a BlockRef for the big array, not its bytes.
        assert len(store) == 1  # still tracked until a release hook fires
        assert leaked_segments(store.prefix) == []  # ...but already unlinked

    def test_small_payloads_stay_inline(self, store):
        a, b = shm_pair(store, BlockStore(run_prefix()))
        a.send(TaskAssign((0, 0), 0, {"x": np.zeros(4)}))
        b.recv(timeout=1.0)
        assert len(store) == 0  # nothing parked

    def test_non_payload_messages_untouched(self, store):
        a, b = shm_pair(store, BlockStore(run_prefix()))
        a.send(IdleSignal(slave_id=3))
        assert b.recv(timeout=1.0) == IdleSignal(slave_id=3)

    def test_batch_envelopes_encode_per_element(self, store):
        slave_store = BlockStore(run_prefix())
        a, b = shm_pair(store, slave_store)
        arrs = [big(i) for i in range(3)]
        a.send(
            BatchAssign(
                assigns=tuple(
                    TaskAssign((i, 0), 0, {"x": arrs[i]}) for i in range(3)
                )
            )
        )
        msg = b.recv(timeout=1.0)
        assert isinstance(msg, BatchAssign) and len(msg.assigns) == 3
        for i, part in enumerate(msg.assigns):
            assert np.array_equal(part.inputs["x"], arrs[i])
        # Results flow the other way, parked by the slave's store.
        b.send(
            BatchResult(
                slave_id=1,
                results=tuple(
                    TaskResult((i, 0), 0, 1, {"y": arrs[i]}) for i in range(3)
                ),
            )
        )
        back = a.recv(timeout=1.0)
        for i, part in enumerate(back.results):
            assert np.array_equal(part.outputs["y"], arrs[i])
        assert leaked_segments(slave_store.prefix) == []

    def test_gone_segment_is_a_dropped_message(self, store):
        a, b = shm_pair(store, BlockStore(run_prefix()))
        a.send(TaskAssign((0, 0), 0, {"x": big()}))
        store.sweep()  # simulate the segment vanishing mid-flight
        with pytest.raises(ChannelTimeout):
            b.recv(timeout=1.0)
        assert b.attach_failures == 1
        b.send(IdleSignal(slave_id=1))  # channel still usable afterwards
        assert a.recv(timeout=1.0) == IdleSignal(slave_id=1)

    def test_digest_survives_the_segment_hop(self, store):
        """Stamped content digests verify against rehydrated arrays."""
        a, b = shm_pair(store, BlockStore(run_prefix()))
        arr = big()
        digest = content_digest({"x": arr})
        a.send(TaskAssign((0, 0), 0, {"x": arr}, digest=digest))
        msg = b.recv(timeout=1.0)
        assert content_digest(msg.inputs) == msg.digest == digest
