"""Tests for boundary-retention (compact-memory) mode.

This is the implementation of the paper's stated future-work item (space
consumption). Invariants: boundary-mode scores equal dense-mode scores on
every backend; the boundary store's peak memory is far below the dense
matrix and bounded by the live wavefront; garbage collection never frees
data a (possibly re-dispatched) consumer still needs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance, LongestCommonSubsequence, NeedlemanWunsch
from repro.algorithms.compaction import BoundaryStore
from repro.cluster.faults import FaultPlan, FaultRule
from repro.dag.partition import partition_pattern


def run_blocked(problem, proc, thread):
    part = partition_pattern(problem.pattern(), proc)
    state = problem.make_state()
    for bid in part.abstract.topological_order():
        inputs = problem.extract_inputs(state, part, bid)
        ev = problem.evaluator(part, bid, inputs)
        outputs = ev.run_serial(part.sub_partition(bid, thread))
        problem.apply_result(state, part, bid, outputs)
    return problem.finalize(state), state


class TestBoundaryCorrectness:
    @pytest.mark.parametrize("cls,attr", [
        (EditDistance, "distance"),
        (LongestCommonSubsequence, "length"),
        (NeedlemanWunsch, "score"),
    ])
    def test_boundary_score_equals_dense(self, cls, attr):
        full = cls.random(45, 61, seed=8)
        compact = cls(full.a, full.b, retain="boundary")
        dense_res, _ = run_blocked(full, 12, 4)
        compact_res, _ = run_blocked(compact, 12, 4)
        assert np.isclose(compact_res.score, float(getattr(dense_res, attr)))

    def test_boundary_through_threads_backend(self):
        problem = EditDistance.random(60, 60, seed=9)
        compact = EditDistance(problem.a, problem.b, retain="boundary")
        run = EasyHPS(RunConfig(nodes=3, threads_per_node=2, backend="threads",
                                process_partition=16, thread_partition=4)).run(compact)
        assert run.value.score == problem.reference()

    def test_boundary_survives_fault_redispatch(self):
        """The GC frees at completion, not dispatch — a timed-out block's
        re-dispatch must still find its inputs alive."""
        problem = EditDistance.random(50, 50, seed=4)
        compact = EditDistance(problem.a, problem.b, retain="boundary")
        plan = FaultPlan([FaultRule("crash", (1, 1), 0), FaultRule("crash", (2, 0), 0)])
        run = EasyHPS(RunConfig(nodes=3, threads_per_node=1, backend="threads",
                                process_partition=16, thread_partition=8,
                                task_timeout=0.4, fault_plan=plan)).run(compact)
        assert run.value.score == problem.reference()
        assert run.report.faults_recovered >= 2

    def test_invalid_retain_rejected(self):
        with pytest.raises(ValueError, match="retain"):
            EditDistance("AC", "GT", retain="sparse")


class TestMemoryAccounting:
    def test_peak_far_below_dense(self):
        problem = EditDistance.random(400, 400, seed=1)
        compact = EditDistance(problem.a, problem.b, retain="boundary")
        res, _ = run_blocked(compact, 40, 10)
        assert res.dense_bytes == 8 * 401 * 401
        assert res.peak_bytes < res.dense_bytes / 5
        assert res.reduction > 5

    def test_store_drains_to_last_blocks(self):
        """After the run only the final frontier (blocks whose consumers
        never existed) remains in the store."""
        problem = LongestCommonSubsequence.random(120, 120, seed=2)
        compact = LongestCommonSubsequence(problem.a, problem.b, retain="boundary")
        _, state = run_blocked(compact, 20, 5)
        store: BoundaryStore = state["boundary"]
        # Live blocks are exactly those on the last row/col of the grid.
        assert all(bid[0] == 5 or bid[1] == 5 for bid in store.rows)

    def test_current_bytes_tracks_live_set(self):
        problem = EditDistance.random(90, 90, seed=3)
        compact = EditDistance(problem.a, problem.b, retain="boundary")
        _, state = run_blocked(compact, 30, 10)
        store: BoundaryStore = state["boundary"]
        expected = sum(8 * (len(r) + len(store.cols[b]) + 1) for b, r in store.rows.items())
        assert store.current_bytes == expected
        assert store.peak_bytes >= store.current_bytes

    @given(m=st.integers(4, 50), n=st.integers(4, 50), proc=st.integers(2, 12))
    @settings(max_examples=25, deadline=None)
    def test_property_boundary_equals_dense(self, m, n, proc):
        full = EditDistance.random(m, n, seed=m * 100 + n)
        compact = EditDistance(full.a, full.b, retain="boundary")
        res, _ = run_blocked(compact, proc, max(1, proc // 2))
        assert res.score == full.reference()


class TestBoundaryStoreUnit:
    def test_put_and_free_cycle(self):
        store = BoundaryStore()
        part = partition_pattern(EditDistance.random(8, 8, seed=0).pattern(), 4)
        block = np.arange(16.0).reshape(4, 4)
        store.put((0, 0), block)
        assert store.current_bytes == 8 * 9
        assert store.corners[(0, 0)] == 15.0
        # Complete every consumer of (0,0): it gets freed.
        for bid in ((0, 1), (1, 0), (1, 1)):
            store.put(bid, block)
            store.mark_complete(part, bid)
        assert (0, 0) not in store.rows
        assert store.peak_bytes == 8 * 9 * 4

    def test_incomplete_consumers_keep_source_alive(self):
        store = BoundaryStore()
        part = partition_pattern(EditDistance.random(8, 8, seed=0).pattern(), 4)
        block = np.ones((4, 4))
        store.put((0, 0), block)
        store.put((0, 1), block)
        store.mark_complete(part, (0, 1))  # (1,0) and (1,1) still missing
        assert (0, 0) in store.rows
