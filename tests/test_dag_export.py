"""Tests for DAG export — and networkx-based cross-validation of our DAG
machinery (acyclicity, topological order, longest path) against an
independent graph library.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.floyd_warshall import FloydWarshallPattern
from repro.dag.export import to_dot, to_networkx
from repro.dag.library import TriangularPattern, WavefrontPattern
from repro.dag.parser import DAGParser, critical_path


class TestToNetworkx:
    def test_node_and_edge_counts(self):
        p = WavefrontPattern(3, 4)
        g = to_networkx(p)
        assert g.number_of_nodes() == 12
        assert g.number_of_edges() == sum(len(p.predecessors(v)) for v in p.vertices())

    def test_data_edges_marked(self):
        p = TriangularPattern(5)
        g = to_networkx(p, data_edges=True)
        kinds = {d["kind"] for _, _, d in g.edges(data=True)}
        assert kinds == {"topo", "data"}
        # The inward diagonal (2,3) -> (1,4) is a data edge, not topo.
        assert g.edges[(2, 3), (1, 4)]["kind"] == "data"

    @pytest.mark.parametrize("pattern", [
        WavefrontPattern(5, 5),
        TriangularPattern(6),
        FloydWarshallPattern(3),
    ])
    def test_networkx_confirms_acyclicity(self, pattern):
        assert nx.is_directed_acyclic_graph(to_networkx(pattern))

    def test_parser_order_is_a_networkx_valid_topo_order(self):
        p = TriangularPattern(5)
        order = DAGParser(p).run_all()
        pos = {v: i for i, v in enumerate(order)}
        g = to_networkx(p)
        for u, v in g.edges():
            assert pos[u] < pos[v]

    def test_critical_path_matches_networkx_longest_path(self):
        p = WavefrontPattern(4, 6)
        ours, _ = critical_path(p, lambda v: 1.0)
        g = to_networkx(p)
        theirs = nx.dag_longest_path_length(g) + 1  # edges -> vertices
        assert ours == theirs

    def test_weighted_critical_path_matches_networkx(self):
        import numpy as np

        rng = np.random.default_rng(3)
        p = TriangularPattern(6)
        costs = {v: float(rng.uniform(0.5, 5.0)) for v in p.vertices()}
        ours, _ = critical_path(p, lambda v: costs[v])
        # Node-weighted longest path via edge weights w(u->v) = cost(v)
        # plus a super-source paying each entry node's own cost.
        g = to_networkx(p)
        for u, v in g.edges():
            g.edges[u, v]["w"] = costs[v]
        g.add_node("S")
        for v in p.vertices():
            g.add_edge("S", v, w=costs[v])
        assert ours == pytest.approx(nx.dag_longest_path_length(g, weight="w"))


class TestToDot:
    def test_structure(self):
        dot = to_dot(WavefrontPattern(2, 2), name="wf")
        assert dot.startswith("digraph wf {")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == 4
        assert 'label="0,0"' in dot

    def test_custom_labels(self):
        dot = to_dot(WavefrontPattern(1, 2), label=lambda v: f"cell{v}")
        assert "cell(0, 0)" in dot

    def test_negative_safe_ids(self):
        # Vertex ids never contain '-' in our patterns, but the escaping
        # must not corrupt output regardless.
        dot = to_dot(WavefrontPattern(1, 1))
        assert "n_0_0" in dot


@given(shape=st.tuples(st.integers(1, 8), st.integers(1, 8)))
@settings(max_examples=25, deadline=None)
def test_property_all_patterns_export_acyclic(shape):
    g = to_networkx(WavefrontPattern(*shape), data_edges=True)
    assert nx.is_directed_acyclic_graph(g)
