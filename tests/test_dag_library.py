"""Unit tests for the built-in DAG Pattern Model library."""

import pytest

from repro.dag.library import (
    PATTERN_LIBRARY,
    ChainPattern,
    CustomPattern,
    Full2DPattern,
    RowColPrefixPattern,
    TriangularPattern,
    WavefrontPattern,
    get_pattern,
    register_pattern,
)
from repro.utils.errors import PatternError


class TestWavefront:
    def test_interior_dependencies(self):
        p = WavefrontPattern(4, 4)
        assert set(p.predecessors((2, 2))) == {(1, 2), (2, 1)}
        assert set(p.successors((2, 2))) == {(3, 2), (2, 3)}

    def test_boundary_dependencies(self):
        p = WavefrontPattern(3, 3)
        assert p.predecessors((0, 2)) == ((0, 1),)
        assert p.predecessors((2, 0)) == ((1, 0),)
        assert p.predecessors((0, 0)) == ()

    def test_diagonal_data_dep_toggle(self):
        with_diag = WavefrontPattern(3, 3, diagonal_data_dep=True)
        without = WavefrontPattern(3, 3, diagonal_data_dep=False)
        assert (0, 0) in with_diag.data_predecessors((1, 1))
        assert (0, 0) not in without.data_predecessors((1, 1))

    def test_row_reversed_flips_row_direction(self):
        p = WavefrontPattern(3, 3, row_reversed=True)
        assert set(p.predecessors((1, 1))) == {(2, 1), (1, 0)}
        assert set(p.successors((1, 1))) == {(0, 1), (1, 2)}
        assert list(p.sources()) == [(2, 0)]

    def test_invalid_shape_rejected(self):
        with pytest.raises(PatternError):
            WavefrontPattern(0, 3)


class TestRowColPrefix:
    def test_topological_reduces_to_wavefront(self):
        p = RowColPrefixPattern(4, 4)
        w = WavefrontPattern(4, 4)
        for v in p.vertices():
            assert p.predecessors(v) == w.predecessors(v)

    def test_data_deps_are_full_prefixes(self):
        p = RowColPrefixPattern(5, 5)
        deps = set(p.data_predecessors((2, 3)))
        expected_row = {(2, k) for k in range(3)}
        expected_col = {(k, 3) for k in range(2)}
        assert expected_row <= deps
        assert expected_col <= deps
        assert (1, 2) in deps  # NW diagonal

    def test_reversed_data_deps_point_down(self):
        p = RowColPrefixPattern(4, 4, row_reversed=True)
        deps = set(p.data_predecessors((1, 2)))
        assert (3, 2) in deps and (2, 2) in deps  # column below
        assert (1, 0) in deps and (1, 1) in deps  # row to the left
        assert (2, 1) in deps  # reversed diagonal


class TestTriangular:
    def test_vertex_count(self):
        assert TriangularPattern(6).n_vertices() == 21

    def test_contains_only_upper_triangle(self):
        p = TriangularPattern(4)
        assert (1, 3) in p and (2, 2) in p
        assert not p.contains((3, 1))

    def test_topological_dependencies(self):
        p = TriangularPattern(5)
        assert set(p.predecessors((1, 3))) == {(1, 2), (2, 3)}
        assert p.predecessors((2, 2)) == ()

    def test_data_deps_are_segments_plus_inward_diagonal(self):
        p = TriangularPattern(6)
        deps = set(p.data_predecessors((1, 4)))
        assert deps == {(1, 1), (1, 2), (1, 3), (2, 4), (3, 4), (4, 4), (2, 3)}

    def test_rejects_nonpositive(self):
        with pytest.raises(PatternError):
            TriangularPattern(0)


class TestFull2D:
    def test_data_deps_are_strict_dominance(self):
        p = Full2DPattern(4, 4)
        deps = set(p.data_predecessors((2, 2)))
        assert {(0, 0), (0, 1), (1, 0), (1, 1)} <= deps
        # N/W cover cells are included for the containment invariant.
        assert (1, 2) in deps and (2, 1) in deps

    def test_source_is_origin_row_and_column(self):
        p = Full2DPattern(3, 3)
        assert list(p.sources()) == [(0, 0)]


class TestChain:
    def test_structure(self):
        p = ChainPattern(4)
        assert list(p.vertices()) == [(0,), (1,), (2,), (3,)]
        assert p.predecessors((0,)) == ()
        assert p.predecessors((3,)) == ((2,),)
        assert p.successors((3,)) == ()


class TestCustomPattern:
    def test_round_trip(self):
        adj = {(0,): [], (1,): [(0,)], (2,): [(0,)], (3,): [(1,), (2,)]}
        p = CustomPattern(adj)
        assert p.n_vertices() == 4
        assert set(p.successors((0,))) == {(1,), (2,)}
        assert p.predecessors((3,)) == ((1,), (2,))

    def test_extra_data_deps_merged(self):
        p = CustomPattern(
            {(0,): [], (1,): [(0,)], (2,): [(1,)]},
            data_deps={(2,): [(0,)]},
        )
        assert set(p.data_predecessors((2,))) == {(1,), (0,)}

    def test_unknown_predecessor_rejected(self):
        with pytest.raises(PatternError):
            CustomPattern({(0,): [(9,)]})

    def test_unknown_data_dep_rejected(self):
        with pytest.raises(PatternError):
            CustomPattern({(0,): [], (1,): [(0,)]}, data_deps={(1,): [(9,)]})

    def test_cycle_rejected_on_construction(self):
        with pytest.raises(PatternError):
            CustomPattern({(0,): [(1,)], (1,): [(0,)]})


class TestLibraryRegistry:
    def test_builtin_names(self):
        assert {"wavefront", "rowcol-prefix", "triangular", "full-2d", "chain"} <= set(
            PATTERN_LIBRARY
        )

    def test_get_pattern(self):
        p = get_pattern("wavefront", 3, 4)
        assert isinstance(p, WavefrontPattern)
        assert p.shape == (3, 4)

    def test_get_unknown_raises(self):
        with pytest.raises(PatternError, match="unknown pattern"):
            get_pattern("nope", 3)

    def test_register_pattern_and_reject_duplicates(self):
        class MyPattern(ChainPattern):
            pass

        name = "test-only-pattern"
        try:
            register_pattern(name, MyPattern)
            assert isinstance(get_pattern(name, 3), MyPattern)
            with pytest.raises(PatternError, match="already registered"):
                register_pattern(name, MyPattern)
        finally:
            PATTERN_LIBRARY.pop(name, None)

    def test_register_rejects_non_pattern(self):
        with pytest.raises(PatternError, match="DAGPattern subclass"):
            register_pattern("not-a-pattern", int)
