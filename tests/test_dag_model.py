"""Unit tests for the DAG Data Driven Model and its Table I fields."""

import pytest

from repro.dag.library import RowColPrefixPattern, TriangularPattern, WavefrontPattern
from repro.dag.model import DAGDataDrivenModel
from repro.utils.errors import PartitionError


class TestModelInitialization:
    def test_basic_fields(self):
        m = DAGDataDrivenModel(RowColPrefixPattern(100, 100), 20, 5)
        assert m.dag_size == (100, 100)
        assert m.rect_size == (5, 5)
        assert m.dag_pos == (0, 0)
        assert m.process_partition_size == (20, 20)
        assert m.thread_partition_size == (5, 5)

    def test_triangular_dag_size(self):
        m = DAGDataDrivenModel(TriangularPattern(60), 20, 5)
        assert m.dag_size == (60, 60)
        assert m.rect_size == (3, 3)

    def test_thread_size_must_not_exceed_process_size(self):
        with pytest.raises(PartitionError, match="must not exceed"):
            DAGDataDrivenModel(WavefrontPattern(50, 50), 10, 20)

    def test_rectangular_partition_sizes(self):
        m = DAGDataDrivenModel(WavefrontPattern(60, 40), (30, 10), (10, 5))
        assert m.rect_size == (2, 4)


class TestLevels:
    def test_process_level_partition(self):
        m = DAGDataDrivenModel(WavefrontPattern(60, 60), 20, 5)
        assert m.process_level.n_blocks == 9
        assert m.process_level.abstract.shape == (3, 3)

    def test_thread_level_partition(self):
        m = DAGDataDrivenModel(WavefrontPattern(60, 60), 20, 5)
        sub = m.thread_level((1, 1))
        assert sub.abstract.shape == (4, 4)
        assert sub.total_cells() == 400

    def test_thread_level_of_triangular_diagonal(self):
        m = DAGDataDrivenModel(TriangularPattern(40), 20, 5)
        sub = m.thread_level((0, 0))
        assert sub.total_cells() == 20 * 21 // 2


class TestDataMapping:
    def test_default_mapping_is_block_ranges(self):
        m = DAGDataDrivenModel(WavefrontPattern(40, 40), 10, 5)
        assert m.data_mapping((1, 2)) == (range(10, 20), range(20, 30))

    def test_custom_mapping_function(self):
        calls = []

        def mapping(bid):
            calls.append(bid)
            return f"region-{bid}"

        m = DAGDataDrivenModel(WavefrontPattern(20, 20), 10, 5, data_mapping=mapping)
        assert m.data_mapping((0, 1)) == "region-(0, 1)"
        assert calls == [(0, 1)]
