"""Unit tests for runtime DAG parsing (Fig 8)."""

import pytest

from repro.dag.library import ChainPattern, TriangularPattern, WavefrontPattern
from repro.dag.parser import DAGParser, VertexState, critical_path
from repro.utils.errors import SchedulerError


class TestParserLifecycle:
    def test_initial_computable_set(self):
        p = DAGParser(WavefrontPattern(3, 3))
        assert p.computable() == [(0, 0)]
        assert p.n_total == 9
        assert p.n_done == 0
        assert not p.is_done()

    def test_triangular_initial_frontier_is_diagonal(self):
        p = DAGParser(TriangularPattern(4))
        assert set(p.computable()) == {(i, i) for i in range(4)}

    def test_complete_unlocks_successors(self):
        p = DAGParser(WavefrontPattern(3, 3))
        fresh = p.complete((0, 0))
        assert fresh == [(0, 1), (1, 0)]
        assert p.state((0, 0)) is VertexState.DONE
        assert p.state((0, 1)) is VertexState.COMPUTABLE
        assert p.state((1, 1)) is VertexState.BLOCKED

    def test_partial_indegree_not_yet_ready(self):
        p = DAGParser(WavefrontPattern(2, 2))
        p.complete((0, 0))
        assert p.complete((0, 1)) == []  # (1,1) still waits on (1,0)
        assert p.complete((1, 0)) == [(1, 1)]

    def test_run_all_drains_everything(self):
        p = DAGParser(WavefrontPattern(4, 5))
        order = p.run_all()
        assert len(order) == 20
        assert p.is_done()
        pos = {v: i for i, v in enumerate(order)}
        for v in WavefrontPattern(4, 5).vertices():
            for pred in WavefrontPattern(4, 5).predecessors(v):
                assert pos[pred] < pos[v]

    def test_reset(self):
        p = DAGParser(ChainPattern(3))
        p.run_all()
        assert p.is_done()
        p.reset()
        assert not p.is_done()
        assert p.computable() == [(0,)]


class TestParserStrictness:
    def test_double_complete_rejected(self):
        p = DAGParser(ChainPattern(3))
        p.complete((0,))
        with pytest.raises(SchedulerError, match="twice"):
            p.complete((0,))

    def test_blocked_complete_rejected(self):
        p = DAGParser(ChainPattern(3))
        with pytest.raises(SchedulerError, match="blocked"):
            p.complete((2,))

    def test_unknown_vertex_rejected(self):
        p = DAGParser(ChainPattern(3))
        with pytest.raises(SchedulerError, match="not a vertex"):
            p.complete((99,))

    def test_custom_order_key(self):
        p = DAGParser(TriangularPattern(3), order_key=lambda v: (-v[0], v[1]))
        assert p.computable() == [(2, 2), (1, 1), (0, 0)]


class TestCriticalPath:
    def test_unit_costs_wavefront(self):
        length, path = critical_path(WavefrontPattern(3, 4), lambda v: 1.0)
        assert length == 6.0  # 3 + 4 - 1 vertices on the longest chain
        assert path[0] == (0, 0) and path[-1] == (2, 3)

    def test_weighted_path_prefers_heavy_vertices(self):
        costs = {(0,): 1.0, (1,): 1.0, (2,): 1.0}
        length, path = critical_path(ChainPattern(3), lambda v: costs[v])
        assert length == 3.0
        assert path == [(0,), (1,), (2,)]

    def test_triangular_path_spans_full_range(self):
        # Paths move up/right monotonically, so the longest chain from any
        # diagonal source (i, i) to the sink (0, n-1) has exactly n cells.
        length, path = critical_path(TriangularPattern(5), lambda v: 1.0)
        assert length == 5.0
        assert path[-1] == (0, 4)
