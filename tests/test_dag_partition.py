"""Unit tests for task partition (Fig 6) and the two-level recursion."""

import pytest

from repro.dag.library import (
    ChainPattern,
    CustomPattern,
    Full2DPattern,
    RowColPrefixPattern,
    TriangularPattern,
    WavefrontPattern,
)
from repro.dag.partition import BlockGrid, partition_pattern
from repro.utils.errors import PartitionError


class TestBlockGrid:
    def test_even_split(self):
        g = BlockGrid(shape=(100, 60), block_shape=(20, 15))
        assert (g.n_block_rows, g.n_block_cols) == (5, 4)
        assert g.n_blocks == 20
        assert g.row_range(0) == range(0, 20)
        assert g.col_range(3) == range(45, 60)

    def test_ragged_edge(self):
        g = BlockGrid(shape=(10, 10), block_shape=(4, 4))
        assert (g.n_block_rows, g.n_block_cols) == (3, 3)
        assert g.row_range(2) == range(8, 10)

    def test_block_of(self):
        g = BlockGrid(shape=(10, 10), block_shape=(4, 4))
        assert g.block_of(0, 0) == (0, 0)
        assert g.block_of(9, 9) == (2, 2)
        assert g.block_of(4, 3) == (1, 0)

    def test_block_of_out_of_range(self):
        g = BlockGrid(shape=(10, 10), block_shape=(4, 4))
        with pytest.raises(PartitionError):
            g.block_of(10, 0)

    def test_invalid_shapes(self):
        with pytest.raises(PartitionError):
            BlockGrid(shape=(0, 5), block_shape=(1, 1))
        with pytest.raises(PartitionError):
            BlockGrid(shape=(5, 5), block_shape=(0, 1))

    def test_range_bounds_checked(self):
        g = BlockGrid(shape=(10, 10), block_shape=(5, 5))
        with pytest.raises(PartitionError):
            g.row_range(2)


class TestPartitionFamilies:
    def test_wavefront_abstract_is_wavefront(self):
        part = partition_pattern(WavefrontPattern(100, 100), 25)
        assert isinstance(part.abstract, WavefrontPattern)
        assert part.abstract.shape == (4, 4)
        part.abstract.validate()

    def test_wavefront_flags_propagate(self):
        base = WavefrontPattern(40, 40, row_reversed=True, diagonal_data_dep=False)
        part = partition_pattern(base, 10)
        assert part.abstract.row_reversed
        assert not part.abstract.diagonal_data_dep

    def test_rowcol_abstract_keeps_prefix_semantics(self):
        part = partition_pattern(RowColPrefixPattern(60, 60), 20)
        assert isinstance(part.abstract, RowColPrefixPattern)
        deps = set(part.abstract.data_predecessors((1, 2)))
        assert {(1, 0), (1, 1), (0, 2)} <= deps

    def test_triangular_abstract_is_triangular(self):
        part = partition_pattern(TriangularPattern(30), 10)
        assert isinstance(part.abstract, TriangularPattern)
        assert part.abstract.n == 3
        assert part.n_blocks == 6

    def test_triangular_requires_square_blocks(self):
        with pytest.raises(PartitionError, match="square"):
            partition_pattern(TriangularPattern(30), (10, 5))

    def test_full2d_partition(self):
        part = partition_pattern(Full2DPattern(20, 30), (10, 10))
        assert isinstance(part.abstract, Full2DPattern)
        assert part.abstract.shape == (2, 3)

    def test_chain_partition(self):
        part = partition_pattern(ChainPattern(17), 5)
        assert isinstance(part.abstract, ChainPattern)
        assert part.abstract.n == 4
        assert part.block_ranges((3,))[0] == range(15, 17)

    def test_custom_pattern_has_no_rule(self):
        with pytest.raises(PartitionError, match="no built-in partition rule"):
            partition_pattern(CustomPattern({(0,): []}), 1)


class TestCellAccounting:
    def test_rectangular_counts_sum_to_total(self):
        part = partition_pattern(WavefrontPattern(37, 53), (10, 8))
        assert part.total_cells() == 37 * 53

    def test_triangular_counts_sum_to_total(self):
        for n, b in [(30, 10), (31, 10), (7, 3)]:
            part = partition_pattern(TriangularPattern(n), b)
            assert part.total_cells() == n * (n + 1) // 2, (n, b)

    def test_diagonal_block_detection(self):
        part = partition_pattern(TriangularPattern(30), 10)
        assert part.is_diagonal_block((1, 1))
        assert not part.is_diagonal_block((0, 1))
        rect = partition_pattern(WavefrontPattern(30, 30), 10)
        assert not rect.is_diagonal_block((1, 1))

    def test_chain_cell_count(self):
        part = partition_pattern(ChainPattern(17), 5)
        assert [part.cell_count((i,)) for i in range(4)] == [5, 5, 5, 2]


class TestTwoLevelRecursion:
    def test_wavefront_sub_partition(self):
        part = partition_pattern(WavefrontPattern(100, 100), 25)
        sub = part.sub_partition((1, 2), 5)
        assert isinstance(sub.abstract, WavefrontPattern)
        assert sub.abstract.shape == (5, 5)
        assert sub.total_cells() == 625

    def test_triangular_diagonal_block_pattern(self):
        part = partition_pattern(TriangularPattern(30), 10)
        diag = part.block_pattern((1, 1))
        assert isinstance(diag, TriangularPattern)
        assert diag.n == 10

    def test_triangular_offdiagonal_block_pattern_is_reversed_prefix(self):
        part = partition_pattern(TriangularPattern(30), 10)
        off = part.block_pattern((0, 2))
        assert isinstance(off, RowColPrefixPattern)
        assert off.row_reversed
        off.validate()

    def test_sub_partition_of_diagonal_block_validates(self):
        part = partition_pattern(TriangularPattern(40), 20)
        sub = part.sub_partition((0, 0), 5)
        sub.abstract.validate()
        assert sub.total_cells() == 20 * 21 // 2

    def test_ragged_sub_partition(self):
        part = partition_pattern(WavefrontPattern(23, 23), 10)
        sub = part.sub_partition((2, 2), 4)  # 3x3 remainder block
        assert sub.total_cells() == 9
        assert sub.abstract.shape == (1, 1)
