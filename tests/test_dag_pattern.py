"""Unit tests for the DAG pattern base class and Table I vertex records."""

import pytest

from repro.dag.library import (
    ChainPattern,
    CustomPattern,
    Full2DPattern,
    RowColPrefixPattern,
    TriangularPattern,
    WavefrontPattern,
)
from repro.dag.pattern import PatternType, edges_of
from repro.utils.errors import PatternError


class TestDAGVertexRecord:
    def test_element_degrees_interior(self):
        p = WavefrontPattern(4, 4)
        v = p.element((2, 2))
        assert v.pre_cnt == 2
        assert v.pos_cnt == 2
        assert v.data_pre_cnt == 3  # N, W plus NW data dependency
        assert set(v.posfix_id) == {(3, 2), (2, 3)}
        assert (1, 1) in v.data_prefix_id

    def test_element_source_has_no_predecessors(self):
        p = WavefrontPattern(3, 3)
        v = p.element((0, 0))
        assert v.pre_cnt == 0
        assert v.data_pre_cnt == 0

    def test_element_rejects_foreign_vertex(self):
        p = WavefrontPattern(3, 3)
        with pytest.raises(PatternError):
            p.element((5, 5))

    def test_element_binds_process_function(self):
        p = ChainPattern(3)
        fn = lambda: 42  # noqa: E731
        assert p.element((1,), process=fn).process is fn


class TestDerivedOperations:
    def test_sources_and_sinks_wavefront(self):
        p = WavefrontPattern(3, 4)
        assert list(p.sources()) == [(0, 0)]
        assert list(p.sinks()) == [(2, 3)]

    def test_sources_triangular_is_main_diagonal(self):
        p = TriangularPattern(5)
        assert set(p.sources()) == {(i, i) for i in range(5)}
        assert list(p.sinks()) == [(0, 4)]

    def test_topological_order_respects_edges(self):
        p = WavefrontPattern(4, 4)
        pos = {v: i for i, v in enumerate(p.topological_order())}
        assert len(pos) == 16
        for pred, succ in edges_of(p):
            assert pos[pred] < pos[succ]

    def test_len_iter_contains(self):
        p = WavefrontPattern(3, 5)
        assert len(p) == 15
        assert (2, 4) in p
        assert (3, 0) not in p
        assert "x" not in p
        assert sorted(p) == sorted(p.vertices())

    def test_as_adjacency_matches_predecessors(self):
        p = TriangularPattern(4)
        adj = p.as_adjacency()
        assert adj[(0, 3)] == p.predecessors((0, 3))
        assert len(adj) == p.n_vertices()


class TestValidation:
    @pytest.mark.parametrize(
        "pattern",
        [
            WavefrontPattern(5, 3),
            WavefrontPattern(4, 4, row_reversed=True),
            WavefrontPattern(2, 6, diagonal_data_dep=False),
            RowColPrefixPattern(4, 5),
            RowColPrefixPattern(5, 4, row_reversed=True),
            TriangularPattern(6),
            Full2DPattern(4, 4),
            ChainPattern(7),
        ],
    )
    def test_all_builtins_validate(self, pattern):
        pattern.validate()

    def test_cycle_detection(self):
        class Cyclic(ChainPattern):
            def predecessors(self, vid):
                (i,) = vid
                return (((i - 1) % self.n,),)

            def successors(self, vid):
                (i,) = vid
                return (((i + 1) % self.n,),)

        with pytest.raises(PatternError, match="cycle"):
            Cyclic(4).validate()

    def test_inconsistent_views_detected(self):
        class Broken(ChainPattern):
            def successors(self, vid):
                return ()  # forgets the edges its predecessors view declares

        with pytest.raises(PatternError, match="successors view"):
            Broken(3).validate()

    def test_data_deps_must_cover_topological(self):
        class BadData(WavefrontPattern):
            def data_predecessors(self, vid):
                return ()

        with pytest.raises(PatternError, match="data deps"):
            BadData(2, 2).validate()


class TestPatternTypes:
    def test_types_assigned(self):
        assert WavefrontPattern(2, 2).pattern_type is PatternType.WAVEFRONT_2D0D
        assert RowColPrefixPattern(2, 2).pattern_type is PatternType.ROWCOL_PREFIX_2D1D
        assert TriangularPattern(2).pattern_type is PatternType.TRIANGULAR_2D1D
        assert Full2DPattern(2, 2).pattern_type is PatternType.FULL_2D2D
        assert ChainPattern(2).pattern_type is PatternType.CHAIN_1D
        assert CustomPattern({(0,): []}).pattern_type is PatternType.CUSTOM

    def test_equality_and_hash(self):
        assert WavefrontPattern(3, 3) == WavefrontPattern(3, 3)
        assert WavefrontPattern(3, 3) != WavefrontPattern(3, 4)
        assert WavefrontPattern(3, 3) != WavefrontPattern(3, 3, row_reversed=True)
        assert hash(TriangularPattern(5)) == hash(TriangularPattern(5))
        assert TriangularPattern(5) != TriangularPattern(6)
