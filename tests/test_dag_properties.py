"""Property-based tests (hypothesis) for DAG invariants.

These pin the structural contracts every other layer builds on: topological
consistency of pred/succ views, partition closure (the abstract DAG is a
valid DAG of the same family and covers all cells exactly once), and the
parser's equivalence to a full topological sort under any completion order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.library import (
    RowColPrefixPattern,
    TriangularPattern,
    WavefrontPattern,
)
from repro.dag.parser import DAGParser
from repro.dag.partition import partition_pattern

grid_shapes = st.tuples(st.integers(1, 12), st.integers(1, 12))
block_shapes = st.tuples(st.integers(1, 6), st.integers(1, 6))


@given(shape=grid_shapes, reversed_=st.booleans())
@settings(max_examples=40, deadline=None)
def test_wavefront_views_are_mutually_consistent(shape, reversed_):
    p = WavefrontPattern(*shape, row_reversed=reversed_)
    for v in p.vertices():
        for pred in p.predecessors(v):
            assert v in p.successors(pred)
        for succ in p.successors(v):
            assert v in p.predecessors(succ)
        assert set(p.predecessors(v)) <= set(p.data_predecessors(v))


@given(n=st.integers(1, 14))
@settings(max_examples=30, deadline=None)
def test_triangular_data_deps_count(n):
    p = TriangularPattern(n)
    for i, j in p.vertices():
        # Row segment (i..j-1), column segment (i+1..j), plus the inward
        # diagonal (i+1, j-1) once the span admits one.
        expected = 2 * (j - i) + (1 if j - i >= 2 else 0)
        assert len(p.data_predecessors((i, j))) == expected


@given(shape=grid_shapes, block=block_shapes)
@settings(max_examples=40, deadline=None)
def test_wavefront_partition_covers_cells_exactly_once(shape, block):
    part = partition_pattern(WavefrontPattern(*shape), block)
    seen = {}
    for bid in part.block_ids():
        rows, cols = part.block_ranges(bid)
        for i in rows:
            for j in cols:
                assert (i, j) not in seen, f"cell ({i},{j}) in two blocks"
                seen[(i, j)] = bid
    assert len(seen) == shape[0] * shape[1]
    assert part.total_cells() == shape[0] * shape[1]


@given(n=st.integers(1, 20), b=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_triangular_partition_covers_cells_exactly_once(n, b):
    part = partition_pattern(TriangularPattern(n), b)
    total = 0
    for bid in part.block_ids():
        rows, cols = part.block_ranges(bid)
        cells = [(i, j) for i in rows for j in cols if i <= j]
        assert len(cells) == part.cell_count(bid)
        total += len(cells)
    assert total == n * (n + 1) // 2


@given(shape=grid_shapes, block=block_shapes)
@settings(max_examples=30, deadline=None)
def test_abstract_pattern_validates_after_partition(shape, block):
    part = partition_pattern(RowColPrefixPattern(*shape), block)
    part.abstract.validate()


@given(
    shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
    data=st.data(),
)
@settings(max_examples=30, deadline=None)
def test_parser_completes_under_any_ready_order(shape, data):
    """Whatever order we drain the computable set in, everything completes
    exactly once and predecessor constraints hold at each step."""
    p = WavefrontPattern(*shape)
    parser = DAGParser(p)
    done = set()
    ready = list(parser.computable())
    while ready:
        idx = data.draw(st.integers(0, len(ready) - 1))
        v = ready.pop(idx)
        for pred in p.predecessors(v):
            assert pred in done
        done.add(v)
        ready.extend(parser.complete(v))
    assert parser.is_done()
    assert len(done) == p.n_vertices()


@given(n=st.integers(2, 16), b=st.integers(1, 6), t=st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_two_level_partition_cell_conservation(n, b, t):
    """Process-level then thread-level partition conserves cells."""
    if t > b:
        t = b
    part = partition_pattern(TriangularPattern(n), b)
    for bid in part.block_ids():
        sub = part.sub_partition(bid, t)
        assert sub.total_cells() == part.cell_count(bid)
