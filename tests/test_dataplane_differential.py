"""Differential data-plane tier: batching x shm against the serial oracle.

Every algorithm in :mod:`repro.algorithms` is run through the parallel
backends with the data-plane knobs (``batch_wave`` wavefront batching,
``shm`` zero-copy block transport) toggled on and off, and each run is
checked against the serial oracle two ways:

- **Committed regions** — every state array is ``np.array_equal`` to the
  oracle's (bit-for-bit, not approximately);
- **Run digest** — the PR 5 XOR-fold over canonical content digests of
  every committed block matches the oracle's, proving commit-for-commit
  content identity regardless of commit order.

The simulated backend computes no cell values, so its differential check
is structural: same task count, full completion, and strictly fewer
protocol messages once batching amortizes the envelope.

Tier-1 covers threads and simulated across all algorithms plus a
two-algorithm processes slice of the full {shm} x {batch_wave} square
(grid + triangular dependency shapes); the complete processes matrix
rides the opt-in ``-m soak`` tier.
"""

import os

import numpy as np
import pytest

from repro import EasyHPS, RunConfig
from repro.cli import ALGORITHMS, _register_algorithms
from repro.comm.shm import leaked_segments

_register_algorithms()

SIZE = 32
SEED = 0
ALGO_NAMES = sorted(ALGORITHMS)

#: Processes subset for tier-1: one rectangular-grid dependency pattern
#: and one triangular one. The full matrix runs under ``-m soak``.
PROCESS_TIER1_ALGOS = ("lcs", "nussinov")


def _problem(name):
    return ALGORITHMS[name](SIZE, SEED)


def _config(backend, **overrides):
    base = dict(
        backend=backend,
        nodes=3,
        threads_per_node=2,
        poll_interval=0.005,
        task_timeout=30.0,
    )
    base.update(overrides)
    return RunConfig(**base)


@pytest.fixture(scope="module")
def oracle():
    """Serial-backend state and run digest for every algorithm."""
    results = {}
    system = EasyHPS(RunConfig(backend="serial"))
    for name in ALGO_NAMES:
        run = system.run(_problem(name))
        assert run.report.run_digest is not None
        results[name] = run
    return results


def _assert_matches_oracle(run, oracle_run):
    assert run.state is not None and oracle_run.state is not None
    assert set(run.state) == set(oracle_run.state)
    for key, expect in oracle_run.state.items():
        got = run.state[key]
        assert got.dtype == expect.dtype, key
        assert np.array_equal(got, expect), f"state[{key!r}] diverged from oracle"
    assert run.report.run_digest == oracle_run.report.run_digest
    assert run.report.n_tasks == oracle_run.report.n_tasks


# -- threads: all algorithms, batching on/off --------------------------------------


@pytest.mark.parametrize("batch", [False, True], ids=["batch-off", "batch-on"])
@pytest.mark.parametrize("algo", ALGO_NAMES)
def test_threads_differential(algo, batch, oracle):
    run = EasyHPS().run(
        _problem(algo), _config("threads", batch_wave=batch, max_batch=4)
    )
    _assert_matches_oracle(run, oracle[algo])


def test_threads_batching_reduces_messages(oracle):
    """Batching ships whole waves: strictly fewer envelopes on a real grid."""
    single = EasyHPS().run(_problem("lcs"), _config("threads"))
    batched = EasyHPS().run(_problem("lcs"), _config("threads", batch_wave=True))
    assert batched.report.messages < single.report.messages
    assert batched.report.run_digest == single.report.run_digest


# -- simulated: all algorithms, batching on/off ------------------------------------


@pytest.mark.parametrize("batch", [False, True], ids=["batch-off", "batch-on"])
@pytest.mark.parametrize("algo", ALGO_NAMES)
def test_simulated_completes(algo, batch, oracle):
    run = EasyHPS().run(
        _problem(algo), _config("simulated", batch_wave=batch, max_batch=4)
    )
    assert run.report.n_tasks == oracle[algo].report.n_tasks
    assert run.report.makespan > 0.0


@pytest.mark.parametrize("algo", ["lcs", "floyd-warshall", "nussinov"])
def test_simulated_batching_reduces_messages(algo):
    single = EasyHPS().run(_problem(algo), _config("simulated"))
    batched = EasyHPS().run(
        _problem(algo), _config("simulated", batch_wave=True, max_batch=8)
    )
    assert batched.report.messages <= single.report.messages
    assert batched.report.n_tasks == single.report.n_tasks


# -- processes: the full {shm} x {batch_wave} square -------------------------------

DATAPLANE_COMBOS = [
    pytest.param(False, False, id="shm-off-batch-off"),
    pytest.param(False, True, id="shm-off-batch-on"),
    pytest.param(True, False, id="shm-on-batch-off"),
    pytest.param(True, True, id="shm-on-batch-on"),
]


def _run_processes(algo, shm, batch, oracle):
    run = EasyHPS().run(
        _problem(algo),
        _config("processes", shm=shm, batch_wave=batch, max_batch=4),
    )
    _assert_matches_oracle(run, oracle[algo])
    # The data plane must leave /dev/shm clean for this process's runs.
    assert leaked_segments(f"repro-{os.getpid()}-") == []


@pytest.mark.parametrize("shm,batch", DATAPLANE_COMBOS)
@pytest.mark.parametrize("algo", PROCESS_TIER1_ALGOS)
def test_processes_differential(algo, shm, batch, oracle):
    _run_processes(algo, shm, batch, oracle)


@pytest.mark.soak
@pytest.mark.parametrize("shm,batch", DATAPLANE_COMBOS)
@pytest.mark.parametrize(
    "algo", [a for a in ALGO_NAMES if a not in PROCESS_TIER1_ALGOS]
)
def test_processes_differential_full(algo, shm, batch, oracle):
    _run_processes(algo, shm, batch, oracle)


def test_processes_shm_batching_reduces_messages(oracle):
    single = EasyHPS().run(_problem("lcs"), _config("processes"))
    both = EasyHPS().run(
        _problem("lcs"), _config("processes", shm=True, batch_wave=True)
    )
    assert both.report.messages < single.report.messages
    assert both.report.run_digest == single.report.run_digest
