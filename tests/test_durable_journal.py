"""Unit and fuzz tests for the write-ahead commit journal (repro.durable)."""

import os
import random

import numpy as np
import pytest

from repro import RunConfig
from repro.algorithms import EditDistance
from repro.durable import MAGIC, CommitJournal, scan_journal
from repro.utils.errors import JournalError, MasterCrash


def make_problem(size=24):
    return EditDistance.random(size, size, seed=0)


def write_journal(path, commits, *, checkpoint_at=None, end=False, config=None):
    """A journal with ``commits`` (task, epoch) records, optional checkpoint."""
    problem = make_problem()
    journal = CommitJournal.create(path, fsync=False, checkpoint_interval=10_000)
    journal.begin(problem, config or RunConfig(backend="serial"))
    committed = {}
    for i, (task, epoch) in enumerate(commits):
        journal.commit(task, epoch, {"cell": np.zeros((2, 2))})
        committed[task] = epoch
        if checkpoint_at is not None and i + 1 == checkpoint_at:
            journal.checkpoint(
                {"dp": np.arange(4.0).reshape(2, 2)},
                committed,
                {t: e + 1 for t, e in committed.items()},
            )
    if end:
        journal.end()
    journal.close()
    return problem


class TestRoundTrip:
    def test_scan_recovers_commits_in_order(self, tmp_path):
        path = str(tmp_path / "j")
        commits = [((0, 0), 0), ((0, 1), 0), ((1, 0), 2)]
        write_journal(path, commits)
        scan = scan_journal(path)
        assert scan.committed == {(0, 0): 0, (0, 1): 0, (1, 0): 2}
        # attempts outpace the highest journaled epoch per task.
        assert scan.attempts[(1, 0)] == 3
        assert not scan.ended and not scan.truncated
        assert scan.n_committed == 3

    def test_begin_carries_problem_and_config(self, tmp_path):
        path = str(tmp_path / "j")
        problem = write_journal(path, [((0, 0), 0)])
        scan = scan_journal(path)
        assert scan.config.backend == "serial"
        assert scan.problem.name == problem.name
        assert scan.problem.reference() == problem.reference()

    def test_end_marks_complete(self, tmp_path):
        path = str(tmp_path / "j")
        write_journal(path, [((0, 0), 0)], end=True)
        assert scan_journal(path).ended

    def test_commit_outputs_preserved(self, tmp_path):
        path = str(tmp_path / "j")
        write_journal(path, [((0, 0), 0)])
        scan = scan_journal(path)
        (task, epoch, outputs), = scan.commits_after_checkpoint
        assert task == (0, 0) and epoch == 0
        assert np.array_equal(outputs["cell"], np.zeros((2, 2)))


class TestCheckpoint:
    def test_checkpoint_compacts_file(self, tmp_path):
        path = str(tmp_path / "j")
        commits = [((0, i), 0) for i in range(6)]
        write_journal(path, commits, checkpoint_at=6)
        plain = str(tmp_path / "plain")
        write_journal(plain, commits)
        scan = scan_journal(path)
        assert scan.committed == {(0, i): 0 for i in range(6)}
        assert scan.commits_after_checkpoint == []  # compacted away
        assert np.array_equal(scan.checkpoint_state["dp"], np.arange(4.0).reshape(2, 2))
        assert scan.attempts == {(0, i): 1 for i in range(6)}

    def test_commits_after_checkpoint_replay_on_top(self, tmp_path):
        path = str(tmp_path / "j")
        commits = [((0, i), 0) for i in range(5)]
        write_journal(path, commits, checkpoint_at=3)
        scan = scan_journal(path)
        assert scan.n_committed == 5
        assert [t for t, _, _ in scan.commits_after_checkpoint] == [(0, 3), (0, 4)]

    def test_should_checkpoint_cadence(self, tmp_path):
        journal = CommitJournal.create(
            str(tmp_path / "j"), fsync=False, checkpoint_interval=3
        )
        journal.begin(make_problem(), RunConfig(backend="serial"))
        for i in range(3):
            assert not journal.should_checkpoint()
            journal.commit((0, i), 0, None)
        assert journal.should_checkpoint()
        journal.checkpoint(None, {(0, i): 0 for i in range(3)}, {})
        assert not journal.should_checkpoint()
        journal.close()


class TestKillSwitch:
    def test_kill_after_raises_master_crash(self, tmp_path):
        path = str(tmp_path / "j")
        journal = CommitJournal.create(path, fsync=False, kill_after=2)
        journal.begin(make_problem(), RunConfig(backend="serial"))
        journal.commit((0, 0), 0, None)
        with pytest.raises(MasterCrash):
            journal.commit((0, 1), 0, None)
        # The crashing commit was journaled before the "kill" — exactly
        # like a real kill -9 after the fsync'd append.
        assert scan_journal(path).committed == {(0, 0): 0, (0, 1): 0}

    def test_kill_torn_leaves_detectable_garbage(self, tmp_path):
        path = str(tmp_path / "j")
        journal = CommitJournal.create(path, fsync=False, kill_after=1, kill_torn=True)
        journal.begin(make_problem(), RunConfig(backend="serial"))
        with pytest.raises(MasterCrash):
            journal.commit((0, 0), 0, None)
        scan = scan_journal(path)
        assert scan.truncated and scan.diagnostic
        assert scan.committed == {(0, 0): 0}


class TestTornTails:
    def test_truncated_tail_falls_back(self, tmp_path):
        path = str(tmp_path / "j")
        write_journal(path, [((0, 0), 0), ((0, 1), 0)])
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)  # tear the final record
        scan = scan_journal(path)
        assert scan.truncated and "torn" in scan.diagnostic.lower() or scan.diagnostic
        assert scan.committed == {(0, 0): 0}

    def test_corrupt_crc_detected(self, tmp_path):
        path = str(tmp_path / "j")
        write_journal(path, [((0, 0), 0), ((0, 1), 0)])
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size - 1)
            last = fh.read(1)
            fh.seek(size - 1)
            fh.write(bytes([last[0] ^ 0xFF]))
        scan = scan_journal(path)
        assert scan.truncated
        assert scan.committed == {(0, 0): 0}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(JournalError):
            scan_journal(str(tmp_path / "nope"))

    def test_bad_magic_raises(self, tmp_path):
        path = str(tmp_path / "j")
        with open(path, "wb") as fh:
            fh.write(b"not a journal at all")
        with pytest.raises(JournalError):
            scan_journal(path)

    def test_open_resume_truncates_tail_and_appends(self, tmp_path):
        path = str(tmp_path / "j")
        write_journal(path, [((0, 0), 0), ((0, 1), 0)])
        with open(path, "ab") as fh:
            fh.write(b"\x07garbage-torn-tail")
        scan = scan_journal(path)
        assert scan.truncated
        journal = CommitJournal.open_resume(scan, fsync=False, checkpoint_interval=32)
        journal.commit((1, 0), 1, None)
        journal.end()
        journal.close()
        rescan = scan_journal(path)
        assert not rescan.truncated and rescan.ended
        assert rescan.committed == {(0, 0): 0, (0, 1): 0, (1, 0): 1}

    def test_fuzz_truncation_never_tracebacks(self, tmp_path):
        """Any prefix of a valid journal scans cleanly (past the begin
        record) — committed is always a prefix of the full commit list."""
        path = str(tmp_path / "full")
        commits = [((i // 4, i % 4), i % 3) for i in range(16)]
        # Measure the header (magic + begin) so the fuzz stays in the
        # region where torn-tail fallback — not JournalError — is the
        # contract.
        header_probe = str(tmp_path / "probe")
        journal = CommitJournal.create(header_probe, fsync=False)
        journal.begin(make_problem(), RunConfig(backend="serial"))
        journal.close()
        header = os.path.getsize(header_probe)
        write_journal(path, commits, checkpoint_at=8)
        full = open(path, "rb").read()
        rng = random.Random(1234)
        for _ in range(40):
            cut = rng.randrange(header, len(full) + 1)
            trial = str(tmp_path / "trial")
            with open(trial, "wb") as fh:
                fh.write(full[:cut])
            scan = scan_journal(trial)  # must never raise
            seen = list(scan.committed)
            expect = [t for t, _ in commits[: len(seen)]]
            assert seen == expect, f"cut={cut}: {seen} != prefix {expect}"
            assert scan.truncated or cut == len(full)

    def test_fuzz_corruption_never_tracebacks(self, tmp_path):
        """Flipping any byte past the begin record yields a truncated
        scan with a diagnostic, never an exception."""
        path = str(tmp_path / "full")
        commits = [((i, 0), 0) for i in range(12)]
        header_probe = str(tmp_path / "probe")
        journal = CommitJournal.create(header_probe, fsync=False)
        journal.begin(make_problem(), RunConfig(backend="serial"))
        journal.close()
        header = os.path.getsize(header_probe)
        write_journal(path, commits)
        full = bytearray(open(path, "rb").read())
        rng = random.Random(99)
        for _ in range(40):
            pos = rng.randrange(header, len(full))
            trial = str(tmp_path / "trial")
            corrupted = bytearray(full)
            corrupted[pos] ^= rng.randrange(1, 256)
            with open(trial, "wb") as fh:
                fh.write(corrupted)
            scan = scan_journal(trial)  # must never raise
            if scan.truncated:
                assert scan.diagnostic
            # committed stays a prefix even when the flip survives CRC
            # framing (pickle payloads of different content still decode
            # to commits only if CRC matched — i.e. never here).
            seen = list(scan.committed)
            assert seen == [t for t, _ in commits[: len(seen)]]

    def test_scan_is_magic_checked_not_extension_checked(self, tmp_path):
        path = str(tmp_path / "weird.name")
        write_journal(path, [((0, 0), 0)])
        raw = open(path, "rb").read()
        assert raw.startswith(MAGIC)
