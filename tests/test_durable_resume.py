"""Crash/resume end-to-end: journaled runs continue to oracle-identical
results after a master crash at any commit (repro.durable + backends)."""

import numpy as np
import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance, Nussinov
from repro.check import check_resume_invariants
from repro.durable import recover, resume_run
from repro.utils.errors import ConfigError, JournalError, MasterCrash


def oracle_state(problem):
    return EasyHPS(RunConfig(backend="serial")).run(problem).state


def assert_states_equal(expected, got):
    assert set(expected) == set(got)
    for key in expected:
        assert np.array_equal(expected[key], got[key]), key


class TestSerialResume:
    def test_crash_then_resume_matches_oracle(self, tmp_path):
        problem = EditDistance.random(40, 40, seed=1)
        path = str(tmp_path / "j")
        config = RunConfig(
            backend="serial", journal_path=path, journal_fsync=False,
            checkpoint_interval=4, journal_kill_after=6,
        )
        with pytest.raises(MasterCrash):
            EasyHPS(config).run(problem)
        rec = recover(path)
        assert 0 < rec.n_committed < rec.n_tasks and not rec.complete
        rec2, run = resume_run(path)
        assert_states_equal(oracle_state(problem), run.state)

    def test_resume_skips_journaled_blocks(self, tmp_path):
        problem = EditDistance.random(40, 40, seed=1)
        path = str(tmp_path / "j")
        config = RunConfig(
            backend="serial", journal_path=path, journal_fsync=False,
            journal_kill_after=6, observe=True,
        )
        with pytest.raises(MasterCrash):
            EasyHPS(config).run(problem)
        rec, run = resume_run(path)
        commits = [e for e in run.report.events if e.kind == "commit"]
        # journaled blocks are replayed, not re-committed live
        assert len(commits) == rec.n_tasks - 6

    def test_resume_after_torn_tail(self, tmp_path):
        problem = EditDistance.random(40, 40, seed=1)
        path = str(tmp_path / "j")
        config = RunConfig(
            backend="serial", journal_path=path, journal_fsync=False,
            journal_kill_after=5, journal_kill_torn=True,
        )
        with pytest.raises(MasterCrash):
            EasyHPS(config).run(problem)
        rec = recover(path)
        assert rec.truncated and rec.diagnostic
        _, run = resume_run(path)
        assert_states_equal(oracle_state(problem), run.state)

    def test_complete_journal_short_circuits(self, tmp_path):
        problem = Nussinov.random(48, seed=2)
        path = str(tmp_path / "j")
        config = RunConfig(backend="serial", journal_path=path, journal_fsync=False)
        expected = EasyHPS(config).run(problem)
        rec = recover(path)
        assert rec.complete
        _, run = resume_run(path)
        assert run.value.score == expected.value.score
        assert run.report.makespan == 0.0  # nothing re-ran

    def test_recover_missing_journal_raises_journal_error(self, tmp_path):
        with pytest.raises(JournalError):
            recover(str(tmp_path / "missing"))


class TestParallelResume:
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_crash_then_resume_matches_oracle(self, backend, tmp_path):
        problem = EditDistance.random(48, 48, seed=3)
        path = str(tmp_path / "j")
        config = RunConfig(
            backend=backend, nodes=4, journal_path=path, journal_fsync=False,
            checkpoint_interval=4, journal_kill_after=7, observe=True,
        )
        with pytest.raises(MasterCrash):
            EasyHPS(config).run(problem)
        rec, run = resume_run(path)
        assert_states_equal(oracle_state(problem), run.state)
        assert run.report.events is not None
        proc_size, _ = rec.config.partitions_for(rec.problem)
        pattern = rec.problem.build_partition(proc_size).abstract
        report = check_resume_invariants(
            run.report.events, rec.scan.committed, pattern=pattern
        )
        assert report.ok, report.summary()

    def test_resume_primes_epochs_past_crash(self, tmp_path):
        """Post-resume dispatch epochs continue from the journaled attempt
        counters, so any stale pre-crash result is epoch-rejected."""
        problem = EditDistance.random(40, 40, seed=3)
        path = str(tmp_path / "j")
        config = RunConfig(
            backend="threads", nodes=3, journal_path=path, journal_fsync=False,
            journal_kill_after=5, observe=True,
        )
        with pytest.raises(MasterCrash):
            EasyHPS(config).run(problem)
        scan_attempts = recover(path).attempts
        rec, run = resume_run(path)
        assigns = [
            e for e in run.report.events
            if e.kind == "assign" and e.scope == "task"
        ]
        for ev in assigns:
            floor = scan_attempts.get(ev.task_id, 0)
            assert ev.epoch >= floor, (ev.task_id, ev.epoch, floor)

    def test_verify_accepts_resumed_trace(self, tmp_path):
        """The happens-before checker must see journaled predecessors as
        committed (trace priming), not flag EARLY_ASSIGN on resume."""
        problem = EditDistance.random(40, 40, seed=4)
        path = str(tmp_path / "j")
        config = RunConfig(
            backend="threads", nodes=3, journal_path=path, journal_fsync=False,
            journal_kill_after=8, verify=True,
        )
        with pytest.raises(MasterCrash):
            EasyHPS(config).run(problem)
        _, run = resume_run(path)  # raises CheckError if priming is broken
        assert_states_equal(oracle_state(problem), run.state)

    def test_resume_journal_written_with_shm_and_batching(self, tmp_path):
        """A journal written with the zero-copy shm plane and wavefront
        batching on resumes under the same config: replayed commits skip,
        the remainder recomputes over BatchAssign envelopes carrying
        BlockRefs, and the crash leaves no orphan segments behind."""
        import os

        from repro.comm.shm import leaked_segments

        problem = EditDistance.random(48, 48, seed=5)
        path = str(tmp_path / "j")
        config = RunConfig(
            backend="processes", nodes=3, journal_path=path, journal_fsync=False,
            checkpoint_interval=4, journal_kill_after=6, observe=True,
            shm=True, batch_wave=True, max_batch=4,
        )
        with pytest.raises(MasterCrash):
            EasyHPS(config).run(problem)
        # The crashed run's teardown sweep reclaimed its segments.
        assert leaked_segments(f"repro-{os.getpid()}-") == []
        rec = recover(path)
        assert rec.config.shm and rec.config.batch_wave  # knobs journaled
        assert 0 < rec.n_committed < rec.n_tasks
        rec2, run = resume_run(path)
        assert_states_equal(oracle_state(problem), run.state)
        assert leaked_segments(f"repro-{os.getpid()}-") == []
        report = check_resume_invariants(run.report.events, rec2.scan.committed)
        assert report.ok, report.summary()


class TestSimulatedResume:
    def test_crash_then_resume_completes_with_invariants(self, tmp_path):
        problem = EditDistance.random(48, 48, seed=5)
        path = str(tmp_path / "j")
        config = RunConfig(
            backend="simulated", nodes=4, journal_path=path, journal_fsync=False,
            checkpoint_interval=4, journal_kill_after=9, observe=True, verify=True,
        )
        with pytest.raises(MasterCrash):
            EasyHPS(config).run(problem)
        rec = recover(path)
        assert rec.state is None  # the simulator computes no values
        rec2, run = resume_run(path)
        proc_size, _ = rec2.config.partitions_for(rec2.problem)
        pattern = rec2.problem.build_partition(proc_size).abstract
        report = check_resume_invariants(
            run.report.events, rec2.scan.committed, pattern=pattern
        )
        assert report.ok, report.summary()

    def test_journal_latency_charged_in_sim_time(self, tmp_path):
        problem = EditDistance.random(48, 48, seed=5)
        base = EasyHPS(RunConfig(backend="simulated", nodes=3)).run(problem)
        slow = EasyHPS(
            RunConfig(
                backend="simulated", nodes=3, journal_fsync=False,
                journal_path=str(tmp_path / "j"), journal_latency=0.5,
            )
        ).run(problem)
        assert slow.report.makespan > base.report.makespan


class TestDurableKnobs:
    def test_knobs_validated(self):
        with pytest.raises(ConfigError):
            RunConfig(checkpoint_interval=0)
        with pytest.raises(ConfigError):
            RunConfig(lease_factor=-1.0)
        with pytest.raises(ConfigError):
            RunConfig(heartbeat_interval=0.0)
        with pytest.raises(ConfigError):
            RunConfig(journal_latency=-0.1)
        with pytest.raises(ConfigError):
            RunConfig(journal_kill_after=0)
        with pytest.raises(ConfigError):
            RunConfig(journal_fsync="yes")

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_INTERVAL", "7")
        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "0.25")
        monkeypatch.setenv("REPRO_LEASE_FACTOR", "5.0")
        monkeypatch.setenv("REPRO_JOURNAL_FSYNC", "0")
        monkeypatch.setenv("REPRO_JOURNAL_LATENCY", "0.001")
        config = RunConfig()
        assert config.checkpoint_interval == 7
        assert config.heartbeat_interval == 0.25
        assert config.lease_factor == 5.0
        assert config.journal_fsync is False
        assert config.journal_latency == 0.001
        assert config.lease_duration == 1.25

    def test_env_overrides_match_existing_knob_conventions(self, monkeypatch):
        # the pre-existing knobs use the same default_factory pattern
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_STALL_TIMEOUT", "none")
        config = RunConfig()
        assert config.task_timeout == 12.5
        assert config.stall_timeout is None

    def test_bad_env_value_raises_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_INTERVAL", "not-an-int")
        with pytest.raises(ConfigError):
            RunConfig()

    def test_lease_duration_none_without_heartbeat(self):
        assert RunConfig().lease_duration is None
