"""Elastic worker membership: mid-run join (attach_worker), clean
departure (WorkerLeave via leave_after), and the RegisterTable/LeaseTable
concurrency the protocol leans on."""

import threading

import numpy as np
import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance
from repro.comm.transport import channel_pair
from repro.runtime.master import MasterPart
from repro.runtime.slave import SlavePart
from repro.runtime.worker_pool import RegisterTable
from repro.schedulers.policy import make_policy
from repro.utils.errors import SchedulerError


def build_parts(problem, config, *, leave_after=None):
    """Threads-backend wiring by hand so tests can reach SlavePart knobs
    (leave_after) and the live MasterPart (attach_worker)."""
    proc_size, thread_size = config.partitions_for(problem)
    partition = problem.build_partition(proc_size)
    policy = make_policy(
        config.scheduler, config.n_slaves, partition.grid.n_block_cols
    )
    stop = threading.Event()
    slaves, master_channels = [], []
    for k in range(config.n_slaves):
        master_end, slave_end = channel_pair()
        master_channels.append(master_end)
        slaves.append(
            SlavePart(
                slave_id=k,
                channel=slave_end,
                problem=problem,
                partition=partition,
                thread_partition=thread_size,
                n_threads=config.threads_per_node,
                stop_event=stop,
                heartbeat_interval=config.heartbeat_interval,
                leave_after=leave_after if k == 0 else None,
            )
        )
    master = MasterPart(
        problem,
        partition,
        master_channels,
        policy,
        task_timeout=config.task_timeout,
        heartbeat_interval=config.heartbeat_interval,
        lease_factor=config.lease_factor,
    )
    return master, slaves, partition, thread_size, stop


def run_parts(master, slaves, stop):
    threads = [
        threading.Thread(target=s.run, daemon=True, name=f"slave{s.slave_id}")
        for s in slaves
    ]
    for t in threads:
        t.start()
    try:
        return master.run()
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=10.0)


class TestPolicyElasticity:
    def test_dynamic_family_is_elastic(self):
        assert make_policy("dynamic", 2, 4).elastic
        assert make_policy("dynamic-lcf", 2, 4).elastic

    def test_wavefront_policies_are_static(self):
        assert not make_policy("bcw", 2, 4).elastic
        assert not make_policy("cw", 2, 4).elastic

    def test_attach_worker_rejected_by_static_policy(self):
        problem = EditDistance.random(32, 32, seed=0)
        config = RunConfig(backend="threads", nodes=3, scheduler="bcw")
        master, slaves, _, _, stop = build_parts(problem, config)
        master_end, _slave_end = channel_pair()
        with pytest.raises(SchedulerError):
            master.attach_worker(master_end)
        stop.set()


class TestMidRunJoin:
    def test_worker_joins_mid_run_and_computes(self):
        problem = EditDistance.random(64, 64, seed=11)
        oracle = EasyHPS(RunConfig(backend="serial")).run(problem)
        config = RunConfig(backend="threads", nodes=3)
        master, slaves, partition, thread_size, stop = build_parts(problem, config)

        joiner_box = {}

        def join_late():
            master_end, slave_end = channel_pair()
            worker_id = master.attach_worker(master_end)
            joiner = SlavePart(
                slave_id=worker_id,
                channel=slave_end,
                problem=problem,
                partition=partition,
                thread_partition=thread_size,
                n_threads=config.threads_per_node,
                stop_event=stop,
            )
            joiner_box["thread"] = threading.Thread(
                target=joiner.run, daemon=True, name=f"slave{worker_id}"
            )
            joiner_box["thread"].start()
            joiner_box["stats"] = joiner.stats

        timer = threading.Timer(0.05, join_late)
        timer.start()
        try:
            state = run_parts(master, slaves, stop)
        finally:
            timer.cancel()
        if "thread" in joiner_box:
            joiner_box["thread"].join(timeout=10.0)

        for key in oracle.state:
            assert np.array_equal(oracle.state[key], state[key])
        assert master.stats.workers_joined == 1
        # The joiner genuinely participated (dynamic policy admits it).
        assert joiner_box["stats"].tasks >= 0

    def test_attach_worker_after_run_raises(self):
        problem = EditDistance.random(32, 32, seed=12)
        config = RunConfig(backend="threads", nodes=3)
        master, slaves, _, _, stop = build_parts(problem, config)
        run_parts(master, slaves, stop)
        master_end, _ = channel_pair()
        with pytest.raises(SchedulerError):
            master.attach_worker(master_end)


class TestCleanDeparture:
    def test_leave_after_retires_worker_and_run_completes(self):
        problem = EditDistance.random(64, 64, seed=13)
        oracle = EasyHPS(RunConfig(backend="serial")).run(problem)
        config = RunConfig(backend="threads", nodes=4)
        master, slaves, _, _, stop = build_parts(problem, config, leave_after=1)
        state = run_parts(master, slaves, stop)
        for key in oracle.state:
            assert np.array_equal(oracle.state[key], state[key])
        assert master.stats.workers_left == 1
        # The departed worker's tasks were requeued without charging the
        # retry budget, so nothing was blacklisted.
        assert not master.stats.blacklisted_workers


class TestRegisterTableConcurrency:
    def test_prime_requires_pristine_table(self):
        table = RegisterTable()
        table.prime({(0, 0): 2})
        assert table.attempts_snapshot() == {(0, 0): 2}
        table.register((1, 1), worker_id=0)
        with pytest.raises(SchedulerError):
            table.prime({(2, 2): 1})

    def test_prime_sets_next_epoch(self):
        table = RegisterTable()
        table.prime({(0, 0): 3})
        assert table.register((0, 0), worker_id=1) == 3

    def test_live_snapshot_under_concurrent_retire_and_join(self):
        """Satellite: hammer register/finish/cancel from worker threads
        (including a simulated mid-run joiner) while a reader snapshots —
        snapshots must always be internally consistent, never raise."""
        table = RegisterTable()
        stop = threading.Event()
        errors = []

        def worker(worker_id, tasks):
            try:
                for task_id in tasks:
                    epoch = table.register(task_id, worker_id)
                    if task_id[1] % 3 == 0:
                        # a "retiring" worker's dispatch gets cancelled...
                        assert table.cancel(task_id, epoch)
                        # ...and redispatched under a new epoch elsewhere
                        epoch = table.register(task_id, worker_id + 100)
                    assert table.finish(task_id, epoch)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            try:
                while not stop.is_set():
                    for task_id, reg in table.live_snapshot():
                        assert isinstance(task_id, tuple)
                        assert reg.epoch >= 0 and reg.worker_id >= 0
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        n_workers, n_tasks = 8, 200
        threads = [
            threading.Thread(
                target=worker,
                args=(w, [(w, i) for i in range(n_tasks)]),
            )
            for w in range(n_workers)
        ]
        # the "joiner" arrives with its own id space mid-hammer
        threads.append(
            threading.Thread(
                target=worker, args=(50, [(50, i) for i in range(n_tasks)])
            )
        )
        reader_t = threading.Thread(target=reader)
        reader_t.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        stop.set()
        reader_t.join(timeout=10.0)

        assert not errors, errors
        assert table.live_snapshot() == ()
        attempts = table.attempts_snapshot()
        for w in list(range(n_workers)) + [50]:
            for i in range(n_tasks):
                expected = 2 if i % 3 == 0 else 1
                assert attempts[(w, i)] == expected
