"""Abort attribution: every exhaustion error names its job and its cause,
and the attribution survives pickling and the serve IPC JSON boundary."""

import json
import pickle

import pytest

from repro.utils.errors import (
    FaultToleranceExhausted,
    JournalIOError,
    ResourceExhausted,
)


class TestResourceExhausted:
    def test_reason_grammar(self):
        exc = ResourceExhausted("disk full", job_id="job-7",
                               resource="disk", op="journal-write")
        assert exc.reason == "resource-exhausted:disk:journal-write"
        assert exc.job_id == "job-7"
        assert isinstance(exc, FaultToleranceExhausted)

    def test_reason_without_op(self):
        assert ResourceExhausted("x", resource="fd").reason == "resource-exhausted:fd"

    def test_str_carries_job_id(self):
        exc = ResourceExhausted("journal gone", job_id="job-3")
        assert "job-3" in str(exc)
        assert "job" not in str(ResourceExhausted("anon"))  # bare without id

    def test_pickle_round_trip_preserves_attribution(self):
        exc = ResourceExhausted("shm exhausted", job_id="run-1",
                                resource="shm", op="park")
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is ResourceExhausted
        assert clone.job_id == "run-1"
        assert clone.resource == "shm"
        assert clone.op == "park"
        assert clone.reason == exc.reason
        assert str(clone) == str(exc)

    def test_fault_tolerance_exhausted_pickles_with_job_id(self):
        exc = FaultToleranceExhausted("budget gone", job_id="job-2")
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.job_id == "job-2"

    def test_journal_io_error_carries_op_errno_path(self):
        exc = JournalIOError("boom", op="fsync", errno=28, path="/tmp/j")
        assert (exc.op, exc.errno, exc.path) == ("fsync", 28, "/tmp/j")


class TestMasterAttribution:
    def test_guard_abort_carries_run_id(self, tmp_path):
        from repro import RunConfig
        from repro.algorithms import EditDistance
        from repro.cluster.faults import IoFaultPlan, IoFaultRule
        from repro.runtime.system import EasyHPS

        cfg = RunConfig(
            backend="threads", nodes=3,
            process_partition=4, thread_partition=2,
            journal_path=str(tmp_path / "j"), journal_fsync=False,
            journal_degrade="abort", journal_retries=0,
            io_fault_plan=IoFaultPlan([IoFaultRule("write", "enospc", after=1)]),
            run_id="attrib-run",
        )
        with pytest.raises(ResourceExhausted) as err:
            EasyHPS(cfg).run(EditDistance.random(16, 16, seed=0))
        assert err.value.job_id == "attrib-run"
        assert err.value.reason.startswith("resource-exhausted:disk:journal-")


class TestIpcRoundTrip:
    def test_reason_survives_wal_snapshot_and_json(self, tmp_path):
        """A resource abort's machine-readable reason must survive the
        daemon's WAL, a daemon restart, and the JSON wire format."""
        from repro.serve import JobSpec, ServeDaemon

        wal_path = str(tmp_path / "serve.srvj")
        daemon = ServeDaemon(workers=1, wal_path=wal_path)
        daemon.start()
        decision = daemon.submit(JobSpec(algo="lcs", size=16, nodes=2))
        assert daemon.wait_idle(30.0)
        record = daemon.get(decision.job_id)
        # Simulate a resource abort outcome on a finished record via the
        # real finish path (the run itself completed cleanly).
        daemon._finish(record, "aborted", "injected disk full",
                       reason="resource-exhausted:disk:journal-write")
        daemon.drain(10.0)

        resumed = ServeDaemon(workers=1, wal_path=wal_path, resume=True)
        resumed.start()
        try:
            snapshots = resumed.jobs()
            wire = json.loads(json.dumps(snapshots))  # the IPC boundary
            assert wire[0]["reason"] == "resource-exhausted:disk:journal-write"
            assert wire[0]["status"] == "aborted"
        finally:
            resumed.drain(10.0)

    def test_snapshot_reason_defaults_empty(self):
        from repro.serve import JobSpec
        from repro.serve.job import JobRecord

        snap = JobRecord("job-1", JobSpec()).snapshot()
        assert snap["reason"] == ""
        json.dumps(snap)  # JSON-safe
