"""Smoke tests: every example script must run to completion.

Examples are user-facing documentation; a broken one is a broken doc.
Each main() runs in-process (imported, not subprocessed) so failures
surface with real tracebacks. Marked slow: the set takes tens of seconds.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


@pytest.fixture(autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def test_examples_discovered():
    assert "quickstart" in EXAMPLES
    assert len(EXAMPLES) >= 9


@pytest.mark.slow
@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = importlib.import_module(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"
