"""Tests for the experiment-record persistence layer."""

import pytest

from repro import RunConfig
from repro.algorithms import SmithWatermanGG
from repro.analysis.experiments import (
    ExperimentLog,
    ExperimentRecord,
    best_by,
    to_markdown,
)
from repro.backends.simulated import run_simulated


@pytest.fixture
def report():
    sw = SmithWatermanGG.random(400, seed=1)
    cfg = RunConfig.experiment(3, 11, process_partition=100, thread_partition=25)
    return run_simulated(sw, cfg)[1]


class TestRecord:
    def test_from_report(self, report):
        rec = ExperimentRecord.from_report("fig13", report, timestamp=123.0, seq_len=400)
        assert rec.experiment == "fig13"
        assert rec.algorithm == "swgg"
        assert rec.cores == 11
        assert rec.params == {"seq_len": 400}
        assert rec.timestamp == 123.0

    def test_json_round_trip(self, report):
        rec = ExperimentRecord.from_report("fig13", report, timestamp=1.0, k=2)
        clone = ExperimentRecord.from_json(rec.to_json())
        assert clone == rec

    def test_markdown_renders(self, report):
        rec = ExperimentRecord.from_report("fig13", report, timestamp=1.0)
        md = to_markdown([rec])
        assert "fig13" in md
        assert "swgg" in md


class TestLog:
    def test_append_and_iterate(self, report, tmp_path):
        log = ExperimentLog(tmp_path / "runs.jsonl")
        log.append_report("fig13", report, seq_len=400)
        log.append_report("fig17", report)
        records = list(log)
        assert len(records) == 2
        assert log.experiments() == ["fig13", "fig17"]
        assert len(log.by_experiment("fig13")) == 1

    def test_missing_file_is_empty(self, tmp_path):
        log = ExperimentLog(tmp_path / "nope.jsonl")
        assert list(log) == []
        assert log.experiments() == []

    def test_best_by(self, report, tmp_path):
        recs = [
            ExperimentRecord.from_report("e", report, timestamp=1.0),
        ]
        fast = ExperimentRecord(
            **{**recs[0].__dict__, "makespan": recs[0].makespan / 2, "params": {}}
        )
        assert best_by([recs[0], fast]).makespan == fast.makespan
        with pytest.raises(ValueError):
            best_by([])
