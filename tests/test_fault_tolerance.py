"""Integration tests for the hierarchical fault tolerance (Figs 10 and 12).

Faults are injected deterministically; every scenario must still produce
a result identical to the serial reference, with the recovery visible in
the run report.
"""

import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance
from repro.cluster.faults import FaultPlan, FaultRule
from repro.utils.errors import FaultToleranceExhausted


@pytest.fixture
def problem():
    return EditDistance.random(50, 50, seed=4)


def cfg(**kw):
    base = dict(
        nodes=3,
        threads_per_node=1,
        backend="threads",
        process_partition=16,
        thread_partition=8,
        task_timeout=0.4,
        poll_interval=0.005,
        hang_duration=0.9,
    )
    base.update(kw)
    return RunConfig(**base)


class TestProcessLevelRecovery:
    def test_single_crash_redistributed(self, problem):
        plan = FaultPlan([FaultRule("crash", (0, 0), 0)])
        run = EasyHPS(cfg(fault_plan=plan)).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.faults_recovered >= 1

    def test_multiple_crashes(self, problem):
        plan = FaultPlan([FaultRule("crash", (0, 0), 0), FaultRule("crash", (1, 1), 0),
                          FaultRule("crash", (2, 3), 0)])
        run = EasyHPS(cfg(fault_plan=plan)).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.faults_recovered >= 3

    def test_repeated_crash_until_retry_budget(self, problem):
        # Fails on attempts 0 and 1, succeeds on 2 — within max_retries=3.
        plan = FaultPlan([FaultRule("crash", (0, 0), 0), FaultRule("crash", (0, 0), 1)])
        run = EasyHPS(cfg(fault_plan=plan)).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.faults_recovered >= 2

    def test_hang_produces_stale_result_that_is_dropped(self, problem):
        plan = FaultPlan([FaultRule("hang", (0, 0), 0)])
        run = EasyHPS(cfg(fault_plan=plan)).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.faults_recovered >= 1

    def test_exhausted_retries_abort(self, problem):
        rules = [FaultRule("crash", (0, 0), k) for k in range(10)]
        with pytest.raises(FaultToleranceExhausted):
            EasyHPS(cfg(fault_plan=FaultPlan(rules), max_retries=1)).run(problem)


class TestThreadLevelRecovery:
    def test_thread_restart_recovers(self, problem):
        tplan = FaultPlan([FaultRule("crash", (0, 0), 0)])
        run = EasyHPS(
            cfg(
                threads_per_node=2,
                thread_fault_plan=tplan,
                subtask_timeout=0.3,
                task_timeout=30.0,
            )
        ).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.thread_restarts >= 1

    def test_both_levels_together(self, problem):
        plan = FaultPlan([FaultRule("crash", (1, 0), 0)])
        tplan = FaultPlan([FaultRule("crash", (1, 1), 0)])
        run = EasyHPS(
            cfg(
                threads_per_node=2,
                fault_plan=plan,
                thread_fault_plan=tplan,
                subtask_timeout=0.3,
                task_timeout=1.5,
            )
        ).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.faults_recovered >= 1
        assert run.report.thread_restarts >= 1


class TestRandomFaultSoak:
    """Randomized crash storms: correctness must survive any fault mix."""

    @pytest.mark.parametrize("p,seed", [(0.1, 1), (0.25, 2), (0.4, 3)])
    def test_threads_backend_survives_crash_storm(self, problem, p, seed):
        plan = FaultPlan.random(p, seed=seed)
        run = EasyHPS(cfg(fault_plan=plan, nodes=4)).run(problem)
        assert run.value.distance == problem.reference()

    def test_simulated_backend_survives_crash_storm(self):
        from repro.algorithms import SmithWatermanGG
        from repro.backends.simulated import run_simulated

        sw = SmithWatermanGG.random(800, seed=7)
        config = RunConfig.experiment(
            4, 16, process_partition=100, thread_partition=25,
            fault_plan=FaultPlan.random(0.3, seed=9), task_timeout=1.0,
        )
        _, rep = run_simulated(sw, config)
        assert rep.faults_recovered > 0
        assert rep.n_tasks == 64


class TestSimulatedFaults:
    def test_crash_recovery_in_simulation(self):
        from repro.algorithms import SmithWatermanGG
        from repro.backends.simulated import run_simulated

        sw = SmithWatermanGG.random(400, seed=6)
        plan = FaultPlan([FaultRule("crash", (0, 0), 0)])
        config = RunConfig.experiment(
            3, 11, process_partition=100, thread_partition=25,
            fault_plan=plan, task_timeout=1.0,
        )
        _, rep = run_simulated(sw, config)
        assert rep.faults_recovered == 1

        _, clean = run_simulated(sw, RunConfig.experiment(
            3, 11, process_partition=100, thread_partition=25))
        assert rep.makespan > clean.makespan  # recovery costs time

    def test_hang_recovery_in_simulation(self):
        from repro.algorithms import SmithWatermanGG
        from repro.backends.simulated import run_simulated

        sw = SmithWatermanGG.random(400, seed=6)
        plan = FaultPlan([FaultRule("hang", (1, 1), 0)])
        config = RunConfig.experiment(
            3, 11, process_partition=100, thread_partition=25,
            fault_plan=plan, task_timeout=1.0,
        )
        _, rep = run_simulated(sw, config)
        assert rep.faults_recovered == 1

    def test_simulated_retry_exhaustion(self):
        from repro.algorithms import SmithWatermanGG
        from repro.backends.simulated import run_simulated

        sw = SmithWatermanGG.random(200, seed=6)
        rules = [FaultRule("crash", (0, 0), k) for k in range(10)]
        config = RunConfig.experiment(
            3, 11, process_partition=100, thread_partition=25,
            fault_plan=FaultPlan(rules), task_timeout=0.5, max_retries=2,
        )
        with pytest.raises(FaultToleranceExhausted):
            run_simulated(sw, config)
