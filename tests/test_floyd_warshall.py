"""Tests for blocked Floyd-Warshall — the staged-DAG extension.

This exercises the :meth:`DPProblem.build_partition` extension point: the
schedulable DAG has 3-index staged vertices rather than blocked matrix
cells, pivot/row/col blocks run monolithically while phase-3 blocks
thread-parallelize over an edge-free inner DAG.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EasyHPS, RunConfig
from repro.algorithms import FloydWarshall
from repro.algorithms.floyd_warshall import (
    FloydWarshallPattern,
    FWPartition,
    fw_block_type,
    reconstruct_path,
)
from repro.dag.library import IndependentGridPattern
from repro.dag.parser import DAGParser


def run_blocked(problem, proc, thread):
    part = problem.build_partition(proc)
    state = problem.make_state()
    for bid in part.abstract.topological_order():
        inputs = problem.extract_inputs(state, part, bid)
        ev = problem.evaluator(part, bid, inputs)
        outputs = ev.run_serial(part.sub_partition(bid, thread))
        problem.apply_result(state, part, bid, outputs)
    return problem.finalize(state), state


def assert_dist_equal(dist, ref):
    finite = np.isfinite(ref)
    assert np.array_equal(np.isfinite(dist), finite)
    assert np.allclose(dist[finite], ref[finite])


class TestFWPattern:
    def test_validates(self):
        FloydWarshallPattern(4).validate()

    def test_vertex_count(self):
        assert FloydWarshallPattern(5).n_vertices() == 125

    def test_block_types(self):
        assert fw_block_type((2, 2, 2)) == "pivot"
        assert fw_block_type((2, 2, 0)) == "row"
        assert fw_block_type((2, 0, 2)) == "col"
        assert fw_block_type((2, 0, 1)) == "phase3"

    def test_round_zero_pivot_is_sole_source(self):
        p = FloydWarshallPattern(3)
        assert list(p.sources()) == [(0, 0, 0)]

    def test_phase3_depends_on_row_and_col(self):
        p = FloydWarshallPattern(3)
        preds = set(p.predecessors((1, 0, 2)))
        # (1, 0, 2) overwrites round-0 row strip R(0, 2): besides its
        # self/row/col inputs it carries WAR edges from that strip's
        # round-0 phase-3 readers.
        assert preds == {(0, 0, 2), (1, 1, 2), (1, 0, 1), (0, 1, 2), (0, 2, 2)}

    def test_row_depends_on_pivot(self):
        p = FloydWarshallPattern(3)
        # (1, 1, 0) overwrites round-0 column strip R(1, 0): WAR edges
        # from its round-0 phase-3 readers ride along with self + pivot.
        assert set(p.predecessors((1, 1, 0))) == {
            (0, 1, 0), (1, 1, 1), (0, 1, 1), (0, 1, 2),
        }

    def test_war_edges_mirror(self):
        """Every WAR predecessor edge appears as a successor edge too."""
        p = FloydWarshallPattern(4)
        for v in p.vertices():
            for u in p.predecessors(v):
                assert v in p.successors(u), (u, v)
            for w in p.successors(v):
                assert v in p.predecessors(w), (v, w)

    def test_parser_drains_completely(self):
        p = FloydWarshallPattern(4)
        order = DAGParser(p).run_all()
        assert len(order) == 64


class TestFWPartition:
    def test_geometry(self):
        part = FWPartition(20, 8)
        assert part.abstract.b == 3
        assert part.block_ranges((1, 2, 0)) == (range(16, 20), range(0, 8))
        assert part.cell_count((0, 2, 2)) == 16
        assert not part.is_diagonal_block((0, 0, 0))

    def test_phase3_inner_is_parallel(self):
        part = FWPartition(16, 8)
        sub = part.sub_partition((0, 1, 1), 4)
        assert isinstance(sub.abstract, IndependentGridPattern)
        assert sub.n_blocks == 4
        assert all(sub.abstract.predecessors(v) == () for v in sub.abstract.vertices())

    def test_pivot_inner_is_monolithic(self):
        part = FWPartition(16, 8)
        for bid in ((0, 0, 0), (0, 0, 1), (0, 1, 0)):
            assert part.sub_partition(bid, 4).n_blocks == 1


class TestFWCorrectness:
    @pytest.mark.parametrize("n,proc,thread", [(17, 5, 2), (24, 8, 4), (9, 9, 3), (12, 4, 4)])
    def test_blocked_equals_reference(self, n, proc, thread):
        fw = FloydWarshall.random(n, density=0.3, seed=n)
        res, _ = run_blocked(fw, proc, thread)
        assert_dist_equal(res.dist, fw.reference())

    def test_dense_graph(self):
        fw = FloydWarshall.random(15, density=1.0, seed=1)
        res, _ = run_blocked(fw, 5, 2)
        assert_dist_equal(res.dist, fw.reference())
        assert res.n_reachable_pairs == 15 * 15

    def test_disconnected_graph(self):
        W = np.full((6, 6), np.inf)
        np.fill_diagonal(W, 0.0)
        W[0, 1] = 2.0
        fw = FloydWarshall(W)
        res, _ = run_blocked(fw, 3, 1)
        assert res.dist[0, 1] == 2.0
        assert not np.isfinite(res.dist[1, 0])
        assert res.n_reachable_pairs == 7

    def test_triangle_inequality_everywhere(self):
        fw = FloydWarshall.random(12, density=0.5, seed=2)
        res, _ = run_blocked(fw, 4, 2)
        D = res.dist
        for k in range(12):
            assert np.all(D <= D[:, k : k + 1] + D[k : k + 1, :] + 1e-9)

    def test_path_reconstruction(self):
        fw = FloydWarshall.random(15, density=0.4, seed=1)
        res, _ = run_blocked(fw, 5, 2)
        finite = np.argwhere(np.isfinite(res.dist) & (res.dist > 0))
        u, v = finite[len(finite) // 2]
        path = reconstruct_path(fw.weights, res.dist, int(u), int(v))
        assert path[0] == u and path[-1] == v
        cost = sum(fw.weights[a, b] for a, b in zip(path, path[1:]))
        assert np.isclose(cost, res.dist[u, v])

    def test_unreachable_path_rejected(self):
        W = np.full((3, 3), np.inf)
        np.fill_diagonal(W, 0.0)
        fw = FloydWarshall(W)
        res, _ = run_blocked(fw, 3, 1)
        with pytest.raises(ValueError, match="unreachable"):
            reconstruct_path(fw.weights, res.dist, 0, 1)

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            FloydWarshall(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="diagonal"):
            FloydWarshall(np.ones((2, 2)))
        with pytest.raises(ValueError, match="negative"):
            FloydWarshall(np.array([[0.0, -1.0], [1.0, 0.0]]))

    @given(n=st.integers(2, 20), proc=st.integers(1, 8), seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_property_blocked_equals_reference(self, n, proc, seed):
        fw = FloydWarshall.random(n, density=0.35, seed=seed)
        res, _ = run_blocked(fw, proc, max(1, proc // 2))
        assert_dist_equal(res.dist, fw.reference())


class TestFWThroughRuntime:
    def test_threads_backend(self):
        fw = FloydWarshall.random(20, density=0.3, seed=2)
        run = EasyHPS(RunConfig(nodes=3, threads_per_node=2, backend="threads",
                                process_partition=5, thread_partition=3)).run(fw)
        assert_dist_equal(run.value.dist, fw.reference())
        assert run.report.n_tasks == 4 ** 3

    @pytest.mark.slow
    def test_processes_backend(self):
        fw = FloydWarshall.random(16, density=0.4, seed=3)
        run = EasyHPS(RunConfig(nodes=3, threads_per_node=2, backend="processes",
                                process_partition=8, thread_partition=4)).run(fw)
        assert_dist_equal(run.value.dist, fw.reference())

    def test_simulated_backend(self):
        fw = FloydWarshall.random(256, density=0.2, seed=3)
        cfg = RunConfig.experiment(3, 11, process_partition=64, thread_partition=16)
        rep = EasyHPS(cfg).run(fw).report
        assert rep.n_tasks == 64
        assert rep.makespan > 0

    def test_simulated_scales_with_cores(self):
        fw = FloydWarshall.random(512, density=0.1, seed=4)
        times = []
        for cores in (7, 17, 27):
            cfg = RunConfig.experiment(3, cores, process_partition=64, thread_partition=8)
            times.append(EasyHPS(cfg).run(fw).report.makespan)
        # Phase-3 blocks dominate and thread-parallelize, so more cores help.
        assert times[-1] < times[0]

    def test_fault_recovery(self):
        from repro.cluster.faults import FaultPlan, FaultRule

        fw = FloydWarshall.random(16, density=0.4, seed=5)
        plan = FaultPlan([FaultRule("crash", (0, 0, 0), 0)])
        run = EasyHPS(RunConfig(nodes=3, threads_per_node=1, backend="threads",
                                process_partition=8, thread_partition=4,
                                task_timeout=0.4, fault_plan=plan)).run(fw)
        assert_dist_equal(run.value.dist, fw.reference())
        assert run.report.faults_recovered >= 1
