"""Tests for schedule tracing/Gantt rendering and the EasyPDP layer."""

import numpy as np
import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance, Nussinov, SmithWatermanGG
from repro.analysis.gantt import TraceEvent, busy_fraction, critical_tail, render_gantt
from repro.backends.simulated import run_simulated
from repro.cluster.faults import FaultPlan, FaultRule
from repro.runtime.easypdp import run_easypdp


class TestTraceRecording:
    def test_trace_off_by_default(self):
        sw = SmithWatermanGG.random(400, seed=1)
        _, rep = run_simulated(sw, RunConfig.experiment(3, 11, process_partition=100,
                                                        thread_partition=25))
        assert rep.trace is None

    def test_trace_covers_every_task(self):
        sw = SmithWatermanGG.random(400, seed=1)
        cfg = RunConfig.experiment(3, 11, process_partition=100, thread_partition=25,
                                   trace=True)
        _, rep = run_simulated(sw, cfg)
        assert rep.trace is not None
        assert len(rep.trace) == rep.n_tasks
        assert {e.task_id for e in rep.trace} == {(i, j) for i in range(4) for j in range(4)}

    def test_trace_events_ordered_and_within_makespan(self):
        sw = SmithWatermanGG.random(400, seed=1)
        cfg = RunConfig.experiment(3, 11, process_partition=100, thread_partition=25,
                                   trace=True)
        _, rep = run_simulated(sw, cfg)
        for e in rep.trace:
            assert 0 <= e.transfer_start <= e.compute_start <= e.compute_end <= e.result_at
            assert e.result_at <= rep.makespan + 1e-9

    def test_trace_respects_node_serialization(self):
        """A node runs one sub-task at a time: its compute intervals are
        disjoint."""
        sw = SmithWatermanGG.random(600, seed=2)
        cfg = RunConfig.experiment(4, 13, process_partition=100, thread_partition=25,
                                   trace=True)
        _, rep = run_simulated(sw, cfg)
        by_node = {}
        for e in rep.trace:
            by_node.setdefault(e.node, []).append((e.compute_start, e.compute_end))
        for intervals in by_node.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2 + 1e-12

    def test_faulted_attempts_not_traced(self):
        sw = SmithWatermanGG.random(400, seed=1)
        plan = FaultPlan([FaultRule("crash", (0, 0), 0)])
        cfg = RunConfig.experiment(3, 11, process_partition=100, thread_partition=25,
                                   trace=True, fault_plan=plan, task_timeout=1.0)
        _, rep = run_simulated(sw, cfg)
        # (0,0) appears exactly once — the successful retry.
        assert sum(1 for e in rep.trace if e.task_id == (0, 0)) == 1


class TestGanttRendering:
    def _trace(self):
        return [
            TraceEvent(0, (0, 0), 0.0, 1.0, 5.0, 5.5),
            TraceEvent(1, (0, 1), 5.5, 6.0, 9.0, 9.5),
            TraceEvent(0, (1, 0), 5.5, 6.0, 10.0, 10.0),
        ]

    def test_render_shape(self):
        out = render_gantt(self._trace(), width=40)
        lines = out.splitlines()
        assert lines[0].startswith("node  0 |")
        assert lines[1].startswith("node  1 |")
        assert "#" in lines[0] and "-" in lines[0] and "." in lines[1]

    def test_empty_trace(self):
        assert render_gantt([]) == "(empty trace)"

    def test_event_validation(self):
        with pytest.raises(ValueError):
            TraceEvent(0, (0, 0), 5.0, 1.0, 2.0, 3.0)

    def test_busy_fraction(self):
        fractions = busy_fraction(self._trace(), makespan=10.0)
        assert fractions[0] == pytest.approx((4.0 + 4.0) / 10.0)
        assert fractions[1] == pytest.approx(0.3)

    def test_critical_tail(self):
        tail = critical_tail(self._trace(), k=1)
        assert tail[0].task_id == (1, 0)

    def test_render_real_schedule(self):
        sw = SmithWatermanGG.random(600, seed=2)
        cfg = RunConfig.experiment(4, 13, process_partition=100, thread_partition=25,
                                   trace=True)
        _, rep = run_simulated(sw, cfg)
        out = render_gantt(rep.trace, width=60, makespan=rep.makespan)
        assert out.count("node") == 3


class TestEasyPDP:
    def test_edit_distance_single_node(self):
        ed = EditDistance.random(60, 80, seed=1)
        result, report = run_easypdp(ed, n_threads=3, partition_size=10)
        assert result.distance == ed.reference()
        assert report.backend == "easypdp"
        assert report.nodes == 1
        assert report.n_subtasks == 6 * 8

    def test_nussinov_single_node(self):
        nu = Nussinov.random(50, seed=2)
        result, _ = run_easypdp(nu, n_threads=2, partition_size=10)
        assert result.score == nu.reference()

    def test_default_partition_size(self):
        ed = EditDistance.random(40, 40, seed=3)
        result, _ = run_easypdp(ed, n_threads=2)
        assert result.distance == ed.reference()

    def test_static_thread_scheduler(self):
        ed = EditDistance.random(48, 48, seed=4)
        result, report = run_easypdp(ed, n_threads=2, partition_size=8, scheduler="bcw")
        assert result.distance == ed.reference()
        assert report.scheduler == "bcw"

    def test_thread_fault_recovery(self):
        ed = EditDistance.random(40, 40, seed=5)
        plan = FaultPlan([FaultRule("crash", (0, 0), 0)])
        result, report = run_easypdp(
            ed, n_threads=2, partition_size=10, subtask_timeout=0.3, fault_plan=plan
        )
        assert result.distance == ed.reference()
        assert report.thread_restarts >= 1

    def test_matches_easyhps_results(self):
        """EasyPDP (1 node) and EasyHPS (multi-node) agree exactly."""
        ed = EditDistance.random(50, 50, seed=6)
        pdp_result, _ = run_easypdp(ed, n_threads=2, partition_size=10)
        hps = EasyHPS(RunConfig(nodes=3, threads_per_node=2, backend="threads",
                                process_partition=25, thread_partition=10)).run(ed)
        assert pdp_result.distance == hps.value.distance
