"""Heartbeat/lease liveness protocol: LeaseTable unit tests plus an
end-to-end check that an expired lease — not the hard task timeout —
drives re-dispatch when a worker goes silent."""

import numpy as np
import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance
from repro.cluster.faults import WorkerFaultPlan, WorkerFaultRule
from repro.runtime.worker_pool import LeaseTable


class TestLeaseTable:
    def test_grant_and_expire(self):
        table = LeaseTable()
        table.grant((0, 0), 0, worker_id=1, now=10.0, duration=2.0)
        assert len(table) == 1
        assert table.expired(11.0) == []
        (lease,) = table.expired(12.5)
        assert lease.task_id == (0, 0) and lease.worker_id == 1
        assert len(table) == 0

    def test_renew_worker_extends_all_its_leases(self):
        table = LeaseTable()
        table.grant((0, 0), 0, worker_id=1, now=0.0, duration=1.0)
        table.grant((0, 1), 0, worker_id=1, now=0.0, duration=1.0)
        table.grant((0, 2), 0, worker_id=2, now=0.0, duration=1.0)
        table.renew_worker(1, now=0.9, duration=1.0)
        expired = table.expired(1.5)  # only worker 2's lease lapsed
        assert [l.task_id for l in expired] == [(0, 2)]
        assert table.expired(2.0) and len(table) == 0

    def test_drop_is_epoch_checked(self):
        table = LeaseTable()
        table.grant((0, 0), 2, worker_id=1, now=0.0, duration=1.0)
        table.drop((0, 0), 1)  # stale epoch: not this dispatch's lease
        assert len(table) == 1
        table.drop((0, 0), 2)
        assert len(table) == 0

    def test_drop_unknown_task_is_noop(self):
        LeaseTable().drop((9, 9), 0)

    def test_regrant_replaces_lease(self):
        table = LeaseTable()
        table.grant((0, 0), 0, worker_id=1, now=0.0, duration=1.0)
        table.grant((0, 0), 1, worker_id=2, now=5.0, duration=1.0)
        assert len(table) == 1
        (lease,) = table.expired(10.0)
        assert lease.epoch == 1 and lease.worker_id == 2


class TestHeartbeatProtocol:
    def test_silent_worker_recovered_by_lease_expiry(self):
        """A slave that dies holding a task stops heartbeating; its lease
        expires after heartbeat_interval * lease_factor and the task is
        re-dispatched long before the hard task timeout."""
        problem = EditDistance.random(48, 48, seed=7)
        oracle = EasyHPS(RunConfig(backend="serial")).run(problem)
        config = RunConfig(
            backend="threads", nodes=4,
            heartbeat_interval=0.05, lease_factor=3.0,
            task_timeout=60.0,  # the backstop must never be what saves us
            worker_fault_plan=WorkerFaultPlan(
                [WorkerFaultRule("die", worker_id=0, after_tasks=1)]
            ),
            observe=True,
        )
        result = EasyHPS(config).run(problem)
        assert result.value.distance == oracle.value.distance
        for key in oracle.state:
            assert np.array_equal(oracle.state[key], result.state[key])
        kinds = [e.kind for e in result.report.events]
        assert "heartbeat" in kinds
        assert "lease-expired" in kinds
        # Recovery happened on the lease clock, not the 60 s timeout.
        assert result.report.wall_time < config.task_timeout / 2

    def test_healthy_run_emits_heartbeats_but_no_expiry(self):
        problem = EditDistance.random(40, 40, seed=8)
        config = RunConfig(
            backend="threads", nodes=3,
            heartbeat_interval=0.05, observe=True,
        )
        result = EasyHPS(config).run(problem)
        kinds = [e.kind for e in result.report.events]
        assert "lease-expired" not in kinds

    def test_no_heartbeat_knob_means_no_heartbeat_traffic(self):
        """heartbeat_interval=None keeps the paper's inference-only
        liveness: no beacons, no leases."""
        problem = EditDistance.random(40, 40, seed=8)
        config = RunConfig(backend="threads", nodes=3, observe=True)
        result = EasyHPS(config).run(problem)
        kinds = {e.kind for e in result.report.events}
        assert "heartbeat" not in kinds
        assert "lease-expired" not in kinds

    def test_processes_backend_heartbeats(self):
        problem = EditDistance.random(40, 40, seed=9)
        oracle = EasyHPS(RunConfig(backend="serial")).run(problem)
        config = RunConfig(
            backend="processes", nodes=3,
            heartbeat_interval=0.05, observe=True,
        )
        result = EasyHPS(config).run(problem)
        assert result.value.distance == oracle.value.distance
        assert "heartbeat" in [e.kind for e in result.report.events]
