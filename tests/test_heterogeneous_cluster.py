"""Heterogeneous-cluster tests: mixed node speeds on the simulator.

The dynamic worker pool's core advantage is adapting to whatever the
hardware gives it; a static column deal cannot. These tests pin that with
explicitly mixed NodeSpecs (one node 3x slower), which also covers the
ClusterSpec-with-custom-nodes configuration path.
"""

import pytest

from repro import RunConfig
from repro.algorithms import SmithWatermanGG
from repro.backends.simulated import run_simulated
from repro.cluster.machine import NodeSpec
from repro.cluster.topology import ClusterSpec


def mixed_cluster(slow_factor: float = 3.0) -> ClusterSpec:
    fast = NodeSpec(threads=4, flops_per_second=5.0e8)
    slow = NodeSpec(threads=4, flops_per_second=5.0e8 / slow_factor)
    return ClusterSpec(compute_nodes=(fast, fast, slow))


@pytest.fixture(scope="module")
def problem():
    return SmithWatermanGG.random(4000, seed=1)


def run(problem, cluster, scheduler):
    cfg = RunConfig(
        nodes=cluster.total_nodes,
        threads_per_node=4,
        backend="simulated",
        cluster=cluster,
        scheduler=scheduler,
        thread_scheduler="dynamic",
        process_partition=200,
        thread_partition=10,
    )
    return run_simulated(problem, cfg)[1]


class TestDynamicAdapts:
    def test_fast_nodes_do_more_work(self, problem):
        rep = run(problem, mixed_cluster(), "dynamic")
        tasks = rep.tasks_per_worker
        assert tasks[0] > tasks[2] and tasks[1] > tasks[2]
        # The slow node still contributes — no starvation.
        assert tasks[2] > 0

    def test_dynamic_beats_bcw_under_heterogeneity(self, problem):
        dyn = run(problem, mixed_cluster(), "dynamic")
        bcw = run(problem, mixed_cluster(), "bcw")
        assert bcw.makespan > dyn.makespan * 1.1, (
            f"BCW should pay for static ownership on mixed nodes: "
            f"{bcw.makespan:.1f} vs {dyn.makespan:.1f}"
        )
        assert bcw.idle_while_ready > 0.0
        assert dyn.idle_while_ready == 0.0

    def test_penalty_grows_with_skew(self, problem):
        ratios = []
        for slow_factor in (1.0, 2.0, 4.0):
            dyn = run(problem, mixed_cluster(slow_factor), "dynamic")
            bcw = run(problem, mixed_cluster(slow_factor), "bcw")
            ratios.append(bcw.makespan / dyn.makespan)
        assert ratios[0] < ratios[1] < ratios[2]

    def test_uniform_cluster_sanity(self, problem):
        """With equal nodes the BCW penalty collapses back to ~1."""
        dyn = run(problem, mixed_cluster(1.0), "dynamic")
        bcw = run(problem, mixed_cluster(1.0), "bcw")
        assert bcw.makespan <= dyn.makespan * 1.05
