"""End-to-end silent-data-corruption defense on the threads backend.

The layering under test: a lying worker slips past digest-only
verification (its digests are self-consistent) but is convicted by audit
recompute or voting; stale-digest corruption is caught at receive; and
with integrity off the machinery costs nothing and guards nothing.
Every defended run must end state-identical to the serial oracle.
"""

import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance
from repro.cluster.faults import (
    MessageFaultPlan,
    MessageFaultRule,
    WorkerFaultPlan,
    WorkerFaultRule,
)
from repro.utils.errors import FaultToleranceExhausted


@pytest.fixture
def problem():
    return EditDistance.random(48, 48, seed=9)


def cfg(**kw):
    base = dict(
        nodes=3,
        threads_per_node=1,
        backend="threads",
        process_partition=16,
        thread_partition=8,
        task_timeout=0.5,
        poll_interval=0.005,
        observe=True,
    )
    base.update(kw)
    return RunConfig(**base)


def oracle_digest(problem, integrity="digest"):
    run = EasyHPS(cfg(backend="serial", nodes=1, integrity=integrity)).run(problem)
    return run.report.run_digest


LIAR_0 = WorkerFaultPlan([WorkerFaultRule("liar", worker_id=0, after_tasks=0)])


class TestLiarWorker:
    def test_digest_only_is_blind_to_a_liar(self, problem):
        """The liar's digests are computed over the lied payload, so
        receive-side verification passes and the corruption commits —
        visible as a run digest diverging from the serial oracle."""
        run = EasyHPS(
            cfg(integrity="digest", worker_fault_plan=LIAR_0)
        ).run(problem)
        assert run.report.audits_convicted == 0
        assert run.report.digest_rejects == 0
        assert run.report.run_digest != oracle_digest(problem)

    def test_audit_convicts_and_recovers(self, problem):
        run = EasyHPS(
            cfg(
                integrity="audit",
                audit_fraction=1.0,
                quarantine_threshold=10**6,  # isolate the audit layer
                worker_fault_plan=LIAR_0,
            )
        ).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.run_digest == oracle_digest(problem)
        assert run.report.audits_convicted >= 1
        assert run.report.tainted_recomputes >= 1

    def test_quarantine_retires_a_serial_liar(self, problem):
        run = EasyHPS(
            cfg(
                integrity="audit",
                audit_fraction=1.0,
                quarantine_threshold=2,
                worker_fault_plan=LIAR_0,
            )
        ).run(problem)
        assert run.value.distance == problem.reference()
        assert 0 in run.report.quarantined_workers
        # The surviving honest workers carried the run to completion.
        assert run.report.run_digest == oracle_digest(problem)

    def test_vote_mode_catches_the_liar(self, problem):
        run = EasyHPS(
            cfg(
                integrity="vote",
                vote_k=2,
                quarantine_threshold=3,
                worker_fault_plan=LIAR_0,
            )
        ).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.run_digest == oracle_digest(problem)


class TestStaleDigestCorruption:
    def test_persistent_corruption_aborts_cleanly(self, problem):
        """Every result of (0, 0) is mutated in transit with a stale
        digest: each attempt is rejected and re-charged until the retry
        budget exhausts — a clean abort, never a wrong answer."""
        plan = MessageFaultPlan([
            MessageFaultRule(
                "corrupt", direction="recv", message_type="TaskResult",
                task_id=(0, 0),
            )
        ])
        with pytest.raises(FaultToleranceExhausted):
            EasyHPS(
                cfg(integrity="digest", message_fault_plan=plan, max_retries=2)
            ).run(problem)

    def test_random_corruption_never_changes_the_answer(self, problem):
        plan = MessageFaultPlan.random(0.1, seed=5, kinds=("corrupt",))
        run = EasyHPS(
            cfg(integrity="digest", message_fault_plan=plan, max_retries=6)
        ).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.run_digest == oracle_digest(problem)


class TestResumeDigestOracle:
    def test_cli_resume_checks_the_fold_with_the_journaled_partition(
        self, problem, tmp_path, capsys
    ):
        """Regression: the resume oracle must reuse the journaled run's
        partition — the fold is over per-block digests, so a serial
        oracle on the default partition folds different payloads even
        when the final state is identical."""
        from repro.cli import main
        from repro.utils.errors import MasterCrash

        path = str(tmp_path / "crash.journal")
        crashing = cfg(
            integrity="digest", journal_path=path, journal_kill_after=4,
            observe=False,
        )
        with pytest.raises(MasterCrash):
            EasyHPS(crashing).run(problem)

        assert main(["resume", path, "--check-oracle"]) == 0
        out = capsys.readouterr().out
        assert "run digest matches" in out


class TestZeroCostOff:
    def test_off_mode_reports_nothing_and_counts_nothing(self, problem):
        run = EasyHPS(cfg(integrity="off")).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.run_digest is None
        assert run.report.digest_rejects == 0
        assert run.report.audits_convicted == 0
        assert run.report.quarantined_workers == ()
        counters = (run.report.metrics or {}).get("counters", {})
        assert not [k for k in counters if str(k).startswith("integrity.")]

    def test_digest_mode_populates_the_run_digest(self, problem):
        run = EasyHPS(cfg(integrity="digest")).run(problem)
        assert run.report.run_digest == oracle_digest(problem)
