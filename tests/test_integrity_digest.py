"""Property tests for canonical content digests and the rolling run fold.

The digest is the integrity layer's ground truth: it must be a pure
function of payload *content* — independent of ``PYTHONHASHSEED``, dict
insertion order, pickling (the processes backend round-trips every
message), and array memory layout — while remaining sensitive to any
actual value, dtype, or shape change.
"""

import os
import pathlib
import pickle
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.messages import EndSignal, IdleSignal, TaskAssign, TaskResult
from repro.comm.serialization import CONTENT_DIGEST_BYTES, content_digest, message_digest
from repro.integrity import fold_commit, run_digest_hex

scalars = st.one_of(
    st.integers(-10**6, 10**6),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.none(),
    st.text(max_size=20),
    st.binary(max_size=20),
)
arrays = st.integers(1, 30).flatmap(
    lambda n: st.integers(0, 2**31).map(
        lambda seed: np.random.default_rng(seed).normal(size=n)
    )
)
payloads = st.recursive(
    st.one_of(scalars, arrays),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=5), children, max_size=4),
    ),
    max_leaves=10,
)


class TestCanonicality:
    def test_stable_across_hash_seeds(self):
        """The same payload digests identically under different
        PYTHONHASHSEED values — i.e. nothing leaks Python ``hash()``."""
        code = (
            "import numpy as np\n"
            "from repro.comm.serialization import content_digest\n"
            "p = {'south': np.arange(12.0), 'east': np.ones((3, 4)),\n"
            "     'meta': {'k': [1, 2.5, 'x', b'y', None, True],\n"
            "              'tags': {'a', 'b', 'c'}}}\n"
            "print(content_digest(p))\n"
        )
        import repro

        src = str(pathlib.Path(repro.__file__).parents[1])
        digests = set()
        for hashseed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=src)
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1
        assert len(digests.pop()) == 2 * CONTENT_DIGEST_BYTES

    @given(p=payloads)
    @settings(max_examples=50, deadline=None)
    def test_pickle_round_trip_preserves_digest(self, p):
        assert content_digest(pickle.loads(pickle.dumps(p))) == content_digest(p)

    @given(
        items=st.dictionaries(st.text(max_size=6), scalars, min_size=2, max_size=6),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_dict_insertion_order_irrelevant(self, items, seed):
        keys = list(items)
        np.random.default_rng(seed).shuffle(keys)
        reordered = {k: items[k] for k in keys}
        assert content_digest(reordered) == content_digest(items)

    def test_set_order_irrelevant(self):
        assert content_digest({"a", "b", "c"}) == content_digest({"c", "a", "b"})

    def test_array_layout_irrelevant_content_decisive(self):
        a = np.arange(12.0).reshape(3, 4)
        strided = np.asfortranarray(a)  # same values, different memory order
        assert content_digest(strided) == content_digest(a)
        assert content_digest(a.T) != content_digest(a)  # shape differs
        assert content_digest(a.astype(np.float32)) != content_digest(a)


class TestSensitivity:
    def test_scalar_types_do_not_collide(self):
        digs = [content_digest(v) for v in (1, 1.0, True, "1", b"1", None)]
        assert len(set(digs)) == len(digs)

    def test_single_element_change_detected(self):
        a = np.zeros(64)
        b = a.copy()
        b[17] = 1e-12
        assert content_digest({"x": a}) != content_digest({"x": b})

    def test_nesting_is_not_flattened(self):
        assert content_digest([1, [2, 3]]) != content_digest([[1, 2], 3])
        assert content_digest([1, 2, 3]) != content_digest([1, [2, 3]])

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            content_digest(object())


class TestMessageDigest:
    def test_data_hops_digest_their_payload(self):
        inputs = {"west": np.ones(5)}
        outputs = {"block": np.zeros((2, 2))}
        assert message_digest(TaskAssign((0, 0), 0, inputs)) == content_digest(inputs)
        assert message_digest(TaskResult((0, 0), 0, 1, outputs)) == content_digest(outputs)

    def test_bare_signals_have_no_digest(self):
        assert message_digest(IdleSignal(slave_id=0)) is None
        assert message_digest(EndSignal()) is None


class TestRunFold:
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_fold_is_order_independent(self, seed):
        rng = np.random.default_rng(seed)
        commits = [((int(i), int(rng.integers(8))), f"d{int(rng.integers(1000)):03x}")
                   for i in range(6)]
        order = list(range(len(commits)))
        rng.shuffle(order)
        acc_a = acc_b = 0
        for tid, dig in commits:
            acc_a = fold_commit(acc_a, tid, dig)
        for i in order:
            tid, dig = commits[i]
            acc_b = fold_commit(acc_b, tid, dig)
        assert run_digest_hex(acc_a) == run_digest_hex(acc_b)

    def test_fold_is_self_inverse(self):
        acc = fold_commit(0, (1, 2), "abc")
        acc = fold_commit(acc, (3, 4), "def")
        acc = fold_commit(acc, (1, 2), "abc")  # revoke the first commit
        assert acc == fold_commit(0, (3, 4), "def")

    def test_replacing_a_commit_changes_the_fold(self):
        honest = fold_commit(0, (0, 0), "aaaa")
        lied = fold_commit(0, (0, 0), "bbbb")
        assert honest != lied

    def test_hex_rendering_is_16_chars(self):
        assert run_digest_hex(0) == "0" * 16
        assert len(run_digest_hex(fold_commit(0, (5, 5), "x"))) == 16
