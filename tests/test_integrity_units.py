"""Unit tests for the integrity policy, taint invalidation in the DAG
parser, and taint-revocation records in the durable journal."""

import numpy as np
import pytest

from repro import RunConfig
from repro.algorithms import EditDistance
from repro.comm.serialization import content_digest
from repro.dag.library import WavefrontPattern
from repro.dag.parser import DAGParser, VertexState
from repro.durable import CommitJournal, scan_journal
from repro.integrity import IntegrityPolicy, fold_commit, run_digest_hex
from repro.utils.errors import ConfigError, SchedulerError


class TestIntegrityPolicy:
    def test_mode_properties(self):
        assert not IntegrityPolicy(mode="off").digest_on
        assert IntegrityPolicy(mode="digest").digest_on
        assert IntegrityPolicy(mode="audit").audit_on
        assert IntegrityPolicy(mode="vote").vote_on
        assert IntegrityPolicy(mode="vote").digest_on

    def test_from_config_resolves_knobs(self):
        cfg = RunConfig(
            integrity="audit", audit_fraction=0.5, vote_k=3, quarantine_threshold=4
        )
        policy = cfg.integrity_policy
        assert policy.mode == "audit"
        assert policy.audit_fraction == 0.5
        assert policy.vote_k == 3
        assert policy.quarantine_threshold == 4

    def test_config_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            RunConfig(integrity="paranoid")
        with pytest.raises(ConfigError):
            RunConfig(audit_fraction=1.5)
        with pytest.raises(ConfigError):
            RunConfig(vote_k=1)
        with pytest.raises(ConfigError):
            RunConfig(quarantine_threshold=0)

    def test_should_audit_is_deterministic_and_seedless(self):
        policy = IntegrityPolicy(mode="audit", audit_fraction=0.5)
        tasks = [(i, j) for i in range(20) for j in range(20)]
        first = [policy.should_audit(t) for t in tasks]
        assert first == [policy.should_audit(t) for t in tasks]
        hit = sum(first)
        assert 0 < hit < len(tasks)  # a genuine sample, not all-or-nothing

    def test_should_audit_extremes(self):
        tasks = [(i, 0) for i in range(50)]
        full = IntegrityPolicy(mode="audit", audit_fraction=1.0)
        never = IntegrityPolicy(mode="audit", audit_fraction=0.0)
        off = IntegrityPolicy(mode="digest", audit_fraction=1.0)
        assert all(full.should_audit(t) for t in tasks)
        assert not any(never.should_audit(t) for t in tasks)
        assert not any(off.should_audit(t) for t in tasks)


class TestParserInvalidate:
    def make_parser(self, rows=3, cols=3):
        return DAGParser(WavefrontPattern(rows, cols))

    def drain(self, parser):
        return parser.run_all()

    def test_invalidate_single_sink_restores_computability(self):
        parser = self.make_parser()
        self.drain(parser)
        assert parser.is_done()
        frontier = parser.invalidate([(2, 2)])
        assert frontier == [(2, 2)]
        assert parser.state((2, 2)) is VertexState.COMPUTABLE
        assert parser.n_remaining == 1
        assert parser.complete((2, 2)) == []
        assert parser.is_done()

    def test_invalidate_closure_recomputes_in_dependency_order(self):
        parser = self.make_parser()
        self.drain(parser)
        # Closure of (1, 1): itself plus all DONE successors.
        closure = [(1, 1), (1, 2), (2, 1), (2, 2)]
        frontier = parser.invalidate(closure)
        assert frontier == [(1, 1)]  # only the root is computable again
        for vid in closure[1:]:
            assert parser.state(vid) is VertexState.BLOCKED
        # Recommitting the root unblocks the rest, exactly as a fresh parse.
        order = self.drain(parser)
        assert order[0] == (1, 1)
        assert set(order) == set(closure)
        assert parser.is_done()

    def test_invalidate_rejects_non_downward_closed_sets(self):
        parser = self.make_parser()
        self.drain(parser)
        with pytest.raises(SchedulerError):
            parser.invalidate([(1, 1)])  # (1, 2) etc. are DONE dependents

    def test_invalidate_rejects_uncommitted_vertices(self):
        parser = self.make_parser()
        with pytest.raises(SchedulerError):
            parser.invalidate([(0, 0)])


class TestJournalInvalidate:
    def open_journal(self, tmp_path):
        path = str(tmp_path / "journal")
        journal = CommitJournal.create(path, fsync=False, checkpoint_interval=10_000)
        journal.begin(EditDistance.random(8, 8, seed=0), RunConfig(backend="serial"))
        return path, journal

    def commit(self, journal, task, fill):
        outputs = {"block": np.full((2, 2), float(fill))}
        journal.commit(task, 0, outputs, digest=content_digest(outputs))
        return content_digest(outputs)

    def test_invalidate_record_revokes_commits_and_digest(self, tmp_path):
        path, journal = self.open_journal(tmp_path)
        d00 = self.commit(journal, (0, 0), 1)
        self.commit(journal, (0, 1), 2)
        journal.invalidate([(0, 1)])
        journal.close()

        scan = scan_journal(path)
        assert scan.committed == {(0, 0): 0}
        assert scan.invalidations == [((0, 1),)]
        assert scan.run_digest == run_digest_hex(fold_commit(0, (0, 0), d00))

    def test_recommit_after_invalidate_restores_the_fold(self, tmp_path):
        path, journal = self.open_journal(tmp_path)
        self.commit(journal, (0, 0), 1)
        tainted = self.commit(journal, (0, 1), 99)  # the lied value
        journal.invalidate([(0, 1)])
        honest = self.commit(journal, (0, 1), 2)  # the recompute
        journal.close()

        scan = scan_journal(path)
        assert scan.committed == {(0, 0): 0, (0, 1): 0}
        assert tainted != honest
        assert scan.commit_digests[(0, 1)] == honest
        # The fold holds exactly the surviving commits.
        acc = 0
        for task, digest in scan.commit_digests.items():
            acc = fold_commit(acc, task, digest)
        assert scan.run_digest == run_digest_hex(acc)

    def test_checkpoint_round_trips_run_digest(self, tmp_path):
        path, journal = self.open_journal(tmp_path)
        d = self.commit(journal, (0, 0), 1)
        acc = fold_commit(0, (0, 0), d)
        journal.checkpoint(
            {"dp": np.zeros((2, 2))},
            {(0, 0): 0},
            {(0, 0): 1},
            run_digest=run_digest_hex(acc),
            commit_digests={(0, 0): d},
        )
        journal.close()

        scan = scan_journal(path)
        assert scan.run_digest == run_digest_hex(acc)
        assert scan.commit_digests == {(0, 0): d}

    def test_invalidate_after_checkpoint_unfolds_from_the_stored_acc(self, tmp_path):
        path, journal = self.open_journal(tmp_path)
        d00 = self.commit(journal, (0, 0), 1)
        d01 = self.commit(journal, (0, 1), 2)
        acc = fold_commit(fold_commit(0, (0, 0), d00), (0, 1), d01)
        journal.checkpoint(
            None,
            {(0, 0): 0, (0, 1): 0},
            {},
            run_digest=run_digest_hex(acc),
            commit_digests={(0, 0): d00, (0, 1): d01},
        )
        journal.invalidate([(0, 1)])
        journal.close()

        scan = scan_journal(path)
        assert scan.committed == {(0, 0): 0}
        assert scan.run_digest == run_digest_hex(fold_commit(0, (0, 0), d00))
