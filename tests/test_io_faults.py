"""The seeded I/O fault plan: rules, random mode, policies, pickling."""

import pickle

import pytest

from repro.cluster.faults import (
    IO_FAULT_KINDS,
    IO_FAULT_OPS,
    IoFaultPlan,
    IoFaultRule,
    IoPolicy,
)


class TestRules:
    def test_exact_index_matches_once(self):
        rule = IoFaultRule("write", "enospc", index=3)
        assert not rule.matches("journal", "write", 2)
        assert rule.matches("journal", "write", 3)
        assert not rule.matches("journal", "write", 4)

    def test_after_is_persistent(self):
        rule = IoFaultRule("write", "enospc", after=2)
        assert not rule.matches("journal", "write", 1)
        assert all(rule.matches("journal", "write", i) for i in range(2, 10))

    def test_stream_scoping(self):
        rule = IoFaultRule("shm", "emfile", stream="shm-master")
        assert rule.matches("shm-master", "shm", 0)
        assert not rule.matches("shm-slave0", "shm", 0)
        assert not rule.matches("shm-master", "write", 0)

    def test_oserror_carries_errno(self):
        exc = IoFaultRule("write", "enospc").to_oserror()
        assert isinstance(exc, OSError)
        assert exc.errno == 28  # ENOSPC
        assert IoFaultRule("fsync", "fsync-fail").to_oserror().errno == 5
        assert IoFaultRule("shm", "emfile").to_oserror().errno == 24

    def test_partial_cut_is_a_proper_prefix(self):
        rule = IoFaultRule("write", "partial", fraction=0.5)
        assert rule.cut(100) == 50
        assert rule.cut(1) == 0  # never the whole record
        assert IoFaultRule("write", "partial", fraction=1.0).cut(64) == 63
        assert IoFaultRule("write", "partial", fraction=0.0).cut(64) == 0

    def test_validation_rejects_unknown_ops_and_kinds(self):
        with pytest.raises(Exception):
            IoFaultRule("read", "enospc")
        with pytest.raises(Exception):
            IoFaultRule("write", "esplode")

    def test_kind_and_op_registries(self):
        assert set(IO_FAULT_OPS) == {"write", "fsync", "shm"}
        assert "enospc" in IO_FAULT_KINDS and "partial" in IO_FAULT_KINDS


class TestRandomPlan:
    def test_pure_function_of_identity(self):
        a = IoFaultPlan.random(p_write=0.3, seed=7)
        b = IoFaultPlan.random(p_write=0.3, seed=7)
        for i in range(50):
            assert a.decide("journal", "write", i) == b.decide("journal", "write", i)

    def test_order_independent(self):
        plan = IoFaultPlan.random(p_write=0.3, seed=7)
        forward = [plan.decide("journal", "write", i) for i in range(30)]
        backward = [plan.decide("journal", "write", i) for i in reversed(range(30))]
        assert forward == list(reversed(backward))

    def test_streams_draw_independently(self):
        plan = IoFaultPlan.random(p_write=0.5, seed=3)
        a = [bool(plan.decide("journal", "write", i)) for i in range(40)]
        b = [bool(plan.decide("serve-wal", "write", i)) for i in range(40)]
        assert a != b  # distinct derived streams

    def test_probability_extremes(self):
        never = IoFaultPlan.random(p_write=0.0, seed=1)
        always = IoFaultPlan.random(p_write=1.0, seed=1)
        assert all(never.decide("j", "write", i) is None for i in range(20))
        assert all(always.decide("j", "write", i) is not None for i in range(20))

    def test_random_kinds_are_realizable_for_the_op(self):
        plan = IoFaultPlan.random(p_write=1.0, p_fsync=1.0, p_shm=1.0, seed=9)
        for i in range(10):
            assert plan.decide("j", "write", i).kind in ("enospc", "eio", "partial")
            assert plan.decide("j", "fsync", i).kind == "fsync-fail"
            assert plan.decide("j", "shm", i).kind in ("enospc", "emfile")

    def test_truthiness(self):
        assert not IoFaultPlan.none()
        assert IoFaultPlan.random(p_fsync=0.01)
        assert IoFaultPlan([IoFaultRule("write", "eio", index=0)])

    def test_plan_pickles_with_decisions_intact(self):
        plan = IoFaultPlan.random(p_write=0.4, p_shm=0.2, seed=5)
        clone = pickle.loads(pickle.dumps(plan))
        for i in range(30):
            assert plan.decide("s", "write", i) == clone.decide("s", "write", i)
            assert plan.decide("s", "shm", i) == clone.decide("s", "shm", i)


class TestPolicy:
    def test_policy_counts_per_op(self):
        plan = IoFaultPlan([IoFaultRule("write", "eio", index=1)])
        pol = IoPolicy(plan, "journal")
        assert pol.fault("write") is None        # index 0
        assert pol.fault("fsync") is None        # fsync counter independent
        assert pol.fault("write").kind == "eio"  # index 1
        assert pol.fault("write") is None        # index 2

    def test_check_raises_the_oserror(self):
        plan = IoFaultPlan([IoFaultRule("fsync", "fsync-fail", index=0)])
        pol = IoPolicy(plan, "journal")
        with pytest.raises(OSError) as err:
            pol.check("fsync")
        assert err.value.errno == 5

    def test_distinct_streams_distinct_sequences(self):
        plan = IoFaultPlan([IoFaultRule("write", "eio", stream="a", index=0)])
        assert IoPolicy(plan, "a").fault("write") is not None
        assert IoPolicy(plan, "b").fault("write") is None
