"""Job attribution across a multi-run process (satellite coverage):
FaultToleranceExhausted carries the job id, the abort telemetry event is
stamped with it, and the shm namespace is a pure function of the run id."""

import pytest

from repro.algorithms import EditDistance
from repro.comm.shm import run_prefix
from repro.comm.transport import channel_pair
from repro.obs.recorder import EventRecorder
from repro.runtime.config import RunConfig
from repro.runtime.master import MasterPart
from repro.schedulers.policy import make_policy
from repro.utils.errors import FaultToleranceExhausted


def _master(job_id=None, obs=None):
    problem = EditDistance.random(16, 16, seed=0)
    config = RunConfig(backend="threads", nodes=2)
    proc_size, _ = config.partitions_for(problem)
    partition = problem.build_partition(proc_size)
    policy = make_policy("dynamic", 1, partition.grid.n_block_cols)
    master_end, slave_end = channel_pair()
    master = MasterPart(
        problem, partition, [master_end], policy,
        task_timeout=1.0, job_id=job_id, obs=obs,
    )
    return master, slave_end


class TestExceptionAttribution:
    def test_str_prefixes_job_id(self):
        exc = FaultToleranceExhausted("retry budget exhausted", job_id="job-42")
        assert str(exc) == "[job job-42] retry budget exhausted"

    def test_str_without_job_id_is_bare(self):
        exc = FaultToleranceExhausted("retry budget exhausted")
        assert str(exc) == "retry budget exhausted"
        assert exc.job_id is None

    def test_request_abort_stamps_job_id(self):
        master, _slave_end = _master(job_id="job-7")
        assert master.request_abort("operator cancelled")
        with pytest.raises(FaultToleranceExhausted) as info:
            master.run()
        assert info.value.job_id == "job-7"
        assert "[job job-7]" in str(info.value)
        assert "operator cancelled" in str(info.value)

    def test_request_abort_after_end_is_noop(self):
        master, _slave_end = _master(job_id="job-7")
        assert master.request_abort("first")
        assert not master.request_abort("second")

    def test_standalone_master_aborts_without_job_id(self):
        master, _slave_end = _master(job_id=None)
        master.request_abort("no daemon here")
        with pytest.raises(FaultToleranceExhausted) as info:
            master.run()
        assert info.value.job_id is None
        assert str(info.value) == "no daemon here"


class TestAbortTelemetry:
    def test_abort_event_carries_job_id(self):
        rec = EventRecorder()
        master, _slave_end = _master(job_id="job-abc", obs=rec)
        master.request_abort("deadline exceeded")
        aborts = [ev for ev in rec.events() if ev.kind == "abort"]
        assert len(aborts) == 1
        assert aborts[0].data["job_id"] == "job-abc"
        assert "deadline exceeded" in aborts[0].data["reason"]
        assert aborts[0].data["exc_type"] == "FaultToleranceExhausted"


class TestShmNamespace:
    def test_prefix_is_pure_function_of_run_id(self):
        assert run_prefix("job-3") == run_prefix("job-3") == "repro-job-3"
        assert run_prefix("job-3") != run_prefix("job-4")

    def test_prefix_sanitizes_hostile_run_ids(self):
        prefix = run_prefix("../../etc/passwd job!")
        assert prefix.startswith("repro-")
        assert "/" not in prefix and " " not in prefix and "!" not in prefix

    def test_anonymous_prefix_is_fresh_per_draw(self):
        import os

        a, b = run_prefix(), run_prefix()
        assert a != b
        assert str(os.getpid()) in a
