"""Journal I/O fault injection, truncate-repair, and the degrade ladder."""

import os

import numpy as np
import pytest

from repro import RunConfig
from repro.algorithms import EditDistance
from repro.cluster.faults import IoFaultPlan, IoFaultRule, IoPolicy
from repro.durable import CommitJournal, JournalGuard, scan_journal
from repro.utils.errors import JournalIOError, MasterCrash, ResourceExhausted


def make_problem(size=24):
    return EditDistance.random(size, size, seed=0)


def make_journal(path, rules, *, fsync=False):
    policy = IoPolicy(IoFaultPlan(rules), "journal")
    journal = CommitJournal.create(
        str(path), fsync=fsync, checkpoint_interval=10_000, io_policy=policy
    )
    journal.begin(make_problem(), RunConfig(backend="serial"))
    return journal


def outputs():
    return {"cell": np.zeros((2, 2))}


class TestInjection:
    def test_write_fault_raises_journal_io_error(self, tmp_path):
        # Frame 0 is begin; frame 1 is the first commit.
        journal = make_journal(tmp_path / "j", [IoFaultRule("write", "enospc", index=1)])
        with pytest.raises(JournalIOError) as err:
            journal.commit((0, 0), 0, outputs())
        assert err.value.op == "write"
        assert err.value.errno == 28
        assert journal.write_errors == 1
        journal.close()

    def test_fsync_fault_raises_journal_io_error(self, tmp_path):
        journal = make_journal(
            tmp_path / "j", [IoFaultRule("fsync", "fsync-fail", index=1)], fsync=True
        )
        with pytest.raises(JournalIOError) as err:
            journal.commit((0, 0), 0, outputs())
        assert err.value.op == "fsync"
        journal.close()

    def test_failed_write_truncates_to_good_prefix(self, tmp_path):
        path = tmp_path / "j"
        journal = make_journal(path, [IoFaultRule("write", "partial", index=2)])
        journal.commit((0, 0), 0, outputs())
        with pytest.raises(JournalIOError):
            journal.commit((0, 1), 0, outputs())
        journal.close()
        # The torn frame was truncated away: the scan sees a clean
        # prefix, not a diagnosed tail.
        scan = scan_journal(str(path))
        assert scan.committed == {(0, 0): 0}
        assert not scan.truncated

    def test_retry_after_repair_lands_the_record(self, tmp_path):
        path = tmp_path / "j"
        journal = make_journal(path, [IoFaultRule("write", "eio", index=1)])
        with pytest.raises(JournalIOError):
            journal.commit((0, 0), 0, outputs())
        journal.commit((0, 0), 0, outputs())  # manual retry, index 2: clean
        journal.close()
        assert scan_journal(str(path)).committed == {(0, 0): 0}

    def test_checkpoint_fault_keeps_old_journal_intact(self, tmp_path):
        path = tmp_path / "j"
        # Indices: 0=begin, 1..2=commits, 3=checkpoint tmp write.
        journal = make_journal(path, [IoFaultRule("write", "enospc", index=3)])
        journal.commit((0, 0), 0, outputs())
        journal.commit((0, 1), 0, outputs())
        with pytest.raises(JournalIOError) as err:
            journal.checkpoint({"dp": np.zeros((2, 2))}, {(0, 0): 0, (0, 1): 0},
                               {(0, 0): 1, (0, 1): 1})
        assert err.value.op == "checkpoint"
        journal.close()
        assert scan_journal(str(path)).committed == {(0, 0): 0, (0, 1): 0}
        assert not list(path.parent.glob("*.tmp"))  # tmp cleaned up


class TestGuardLadder:
    def guarded(self, path, rules, mode, retries=0):
        journal = make_journal(path, rules)
        return JournalGuard(journal, mode=mode, retries=retries, job_id="job-9")

    def test_retry_absorbs_isolated_fault(self, tmp_path):
        guard = self.guarded(
            tmp_path / "j", [IoFaultRule("write", "eio", index=1)], "abort", retries=1
        )
        assert guard.commit((0, 0), 0, outputs()) > 0
        assert guard.errors_absorbed == 1
        assert not guard.degraded
        guard.close()
        assert scan_journal(str(tmp_path / "j")).committed == {(0, 0): 0}

    def test_abort_mode_raises_attributed_resource_exhausted(self, tmp_path):
        guard = self.guarded(
            tmp_path / "j", [IoFaultRule("write", "enospc", after=1)], "abort"
        )
        with pytest.raises(ResourceExhausted) as err:
            guard.commit((0, 0), 0, outputs())
        assert err.value.job_id == "job-9"
        assert err.value.reason == "resource-exhausted:disk:journal-commit"
        guard.close()

    def test_open_failure_attributes_fd_resource(self, tmp_path):
        # Persistent write faults + a repair that cannot reopen: op
        # becomes "open" and the resource is attributed to fds.
        guard = self.guarded(
            tmp_path / "j", [IoFaultRule("write", "enospc", after=1)], "abort"
        )
        with pytest.raises(ResourceExhausted):
            guard.commit((0, 0), 0, outputs())
        guard.journal._fh = None  # simulate the reopen having failed
        with pytest.raises(ResourceExhausted) as err:
            guard.commit((0, 1), 0, outputs())
        assert err.value.resource == "fd"
        assert err.value.reason.startswith("resource-exhausted:fd")
        guard.close()

    def test_checkpoint_mode_rescues_via_compaction(self, tmp_path):
        path = tmp_path / "j"
        # The commit at write-index 2 faults once; the rescue checkpoint
        # rewrites the file and the retried commit lands.
        guard = self.guarded(
            path, [IoFaultRule("write", "eio", index=2)], "checkpoint"
        )
        state = {"dp": np.zeros((2, 2))}
        committed = {}

        def rescue():
            guard.checkpoint(state, dict(committed), {t: 1 for t in committed})

        guard.bind_rescue(rescue)
        guard.commit((0, 0), 0, outputs())
        committed[(0, 0)] = 0
        guard.commit((0, 1), 0, outputs())  # faults, rescued, retried
        committed[(0, 1)] = 0
        guard.close()
        scan = scan_journal(str(path))
        assert scan.committed == {(0, 0): 0, (0, 1): 0}
        assert guard.errors_absorbed >= 1
        assert not guard.degraded

    def test_checkpoint_mode_without_rescue_aborts(self, tmp_path):
        guard = self.guarded(
            tmp_path / "j", [IoFaultRule("write", "enospc", after=1)], "checkpoint"
        )
        with pytest.raises(ResourceExhausted):
            guard.commit((0, 0), 0, outputs())
        guard.close()

    def test_memory_mode_unlinks_and_continues(self, tmp_path):
        path = tmp_path / "j"
        guard = self.guarded(
            path, [IoFaultRule("write", "enospc", after=1)], "memory"
        )
        assert guard.commit((0, 0), 0, outputs()) == 0  # degraded: no bytes
        assert guard.degraded
        assert guard.journal is None
        # The stale journal is gone: a resume cannot silently lose the
        # commits that only ever existed in memory.
        assert not os.path.exists(path)
        # The whole surface stays callable after degradation.
        assert guard.commit((0, 1), 0, outputs()) == 0
        guard.invalidate([(0, 0)])
        assert not guard.should_checkpoint()
        guard.end()
        guard.close()

    def test_master_crash_passes_through_untouched(self, tmp_path):
        journal = CommitJournal.create(
            str(tmp_path / "j"), fsync=False, kill_after=1
        )
        journal.begin(make_problem(), RunConfig(backend="serial"))
        guard = JournalGuard(journal, mode="memory", retries=3, job_id="j")
        with pytest.raises(MasterCrash):
            guard.commit((0, 0), 0, outputs())
        guard.close()

    def test_degrade_emits_obs_event(self, tmp_path):
        from repro.obs import EventRecorder

        rec = EventRecorder()
        journal = make_journal(
            tmp_path / "j", [IoFaultRule("write", "enospc", after=1)]
        )
        guard = JournalGuard(
            journal, mode="memory", retries=0, job_id="job-3", obs=rec
        )
        guard.commit((0, 0), 0, outputs())
        events = [e for e in rec.events() if e.kind == "resource-degrade"]
        assert len(events) == 1
        assert events[0].data["layer"] == "journal"
        assert events[0].data["action"] == "memory"
        assert events[0].data["job_id"] == "job-3"
        guard.close()


class TestConfigSurface:
    def test_config_validates_degrade_knobs(self):
        from repro.utils.errors import ConfigError

        with pytest.raises(ConfigError):
            RunConfig(journal_degrade="yolo")
        with pytest.raises(ConfigError):
            RunConfig(journal_retries=-1)
        cfg = RunConfig(
            journal_degrade="checkpoint",
            io_fault_plan=IoFaultPlan.random(p_write=0.1, seed=0),
        )
        assert bool(cfg.io_fault_plan)

    def test_open_journal_wraps_in_guard(self, tmp_path):
        from repro.backends.threads import open_journal

        cfg = RunConfig(
            backend="serial",
            journal_path=str(tmp_path / "j"),
            journal_fsync=False,
            journal_degrade="memory",
            run_id="run-1",
        )
        guard = open_journal(cfg, make_problem(), None)
        assert isinstance(guard, JournalGuard)
        assert guard.job_id == "run-1"
        guard.close()

    def test_end_to_end_memory_degrade_still_correct(self, tmp_path):
        from repro.runtime.system import EasyHPS

        problem = make_problem(16)
        plan = IoFaultPlan([IoFaultRule("write", "enospc", after=3)])
        cfg = RunConfig(
            backend="threads",
            nodes=3,
            process_partition=4,
            thread_partition=2,
            journal_path=str(tmp_path / "j"),
            journal_fsync=False,
            journal_degrade="memory",
            io_fault_plan=plan,
        )
        run = EasyHPS(cfg).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.faults_recovered == 0
