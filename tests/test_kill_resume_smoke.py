"""End-to-end kill -9 smoke: start a journaled processes-backend run as a
real subprocess, SIGKILL it mid-flight, then `repro resume --check-oracle`
and demand exit 0. This is the same scenario the CI kill-resume job runs."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.durable import scan_journal

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def repro_cmd(*args):
    return [sys.executable, "-m", "repro", *args]


def repro_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.mark.slow
def test_sigkill_master_then_resume_matches_oracle(tmp_path):
    journal = str(tmp_path / "master.journal")
    # Big enough that the run is still in flight when we pull the trigger;
    # fsync off keeps the smoke fast on slow CI disks.
    env = repro_env()
    env["REPRO_JOURNAL_FSYNC"] = "0"
    proc = subprocess.Popen(
        repro_cmd(
            "run", "--backend", "processes", "--nodes", "3",
            "--algo", "edit-distance", "--size", "600",
            "--journal", journal,
        ),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        # Wait for real progress (>= 2 journaled commits), then kill -9.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                pytest.fail("run finished before the kill — instance too small")
            try:
                if scan_journal(journal).n_committed >= 2:
                    break
            except Exception:
                pass  # journal not created / begin not written yet
            time.sleep(0.05)
        else:
            pytest.fail("no journal progress within 120 s")
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30.0)

    scan = scan_journal(journal)
    assert 0 < scan.n_committed and not scan.ended

    resumed = subprocess.run(
        repro_cmd("resume", journal, "--check-oracle"),
        env=repro_env(),
        capture_output=True,
        text=True,
        timeout=300.0,
    )
    assert resumed.returncode == 0, resumed.stdout + resumed.stderr
    assert "oracle check" in resumed.stdout
    # And the journal now covers the whole run.
    assert scan_journal(journal).ended
