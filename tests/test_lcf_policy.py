"""Tests for the largest-cost-first dynamic policy extension."""

import pytest

from repro import RunConfig
from repro.algorithms import Nussinov
from repro.backends.simulated import run_simulated, simulate_level
from repro.dag.library import CustomPattern
from repro.schedulers.policy import CostAwareDynamicPolicy, DynamicPolicy, make_policy
from repro.utils.errors import ConfigError


class TestPolicyUnit:
    def test_picks_heaviest_ready(self):
        p = CostAwareDynamicPolicy(2, cost_fn=lambda t: t[0] * 10 + t[1])
        assert p.select_index(0, [(0, 1), (2, 0), (1, 1)]) == 1
        assert p.select_index(0, []) is None

    def test_requires_callable(self):
        with pytest.raises(ConfigError):
            CostAwareDynamicPolicy(2, cost_fn=None)

    def test_factory_degrades_without_cost_fn(self):
        p = make_policy("dynamic-lcf", 3, 10)
        assert type(p) is DynamicPolicy

    def test_factory_builds_lcf_with_cost_fn(self):
        p = make_policy("dynamic-lcf", 3, 10, cost_fn=lambda t: 1.0)
        assert isinstance(p, CostAwareDynamicPolicy)

    def test_default_select_index_is_lifo(self):
        p = DynamicPolicy(1)
        assert p.select_index(0, [(0, 0), (0, 1)]) == 1


class TestLPTAdvantage:
    def _independent(self, costs):
        """A DAG with no edges: the classic makespan-scheduling setting."""
        pattern = CustomPattern({(i,): [] for i in range(len(costs))})
        return pattern, {(i,): c for i, c in enumerate(costs)}

    def test_lcf_beats_lifo_on_heterogeneous_independents(self):
        # One long task hidden at the bottom of the stack: LIFO starts it
        # last, LPT starts it first.
        costs = [10.0] + [1.0] * 10
        pattern, cost_map = self._independent(costs)
        lifo, _, _ = simulate_level(pattern, cost_map, 2, make_policy("dynamic", 2, 1))
        lpt, _, _ = simulate_level(
            pattern, cost_map, 2,
            make_policy("dynamic-lcf", 2, 1, cost_fn=lambda t: cost_map[t]),
        )
        assert lpt == 10.0
        assert lifo > lpt

    def test_equal_costs_make_no_difference(self):
        pattern, cost_map = self._independent([2.0] * 8)
        lifo, _, _ = simulate_level(pattern, cost_map, 4, make_policy("dynamic", 4, 1))
        lpt, _, _ = simulate_level(
            pattern, cost_map, 4,
            make_policy("dynamic-lcf", 4, 1, cost_fn=lambda t: cost_map[t]),
        )
        assert lifo == lpt == 4.0


class TestEndToEnd:
    def test_lcf_valid_through_simulated_backend(self):
        nu = Nussinov.random(1500, seed=2)
        cfg = RunConfig.experiment(4, 16, scheduler="dynamic-lcf",
                                   process_partition=150, thread_partition=25)
        _, rep = run_simulated(nu, cfg)
        assert rep.scheduler == "dynamic-lcf"
        assert rep.n_tasks == 10 * 11 // 2

    def test_lcf_never_worse_than_dynamic_at_paper_configs(self):
        """At the paper's configurations the DAG precedence already orders
        work by cost, so lcf matches dynamic — the ablation's finding."""
        nu = Nussinov.random(2000, seed=3)
        res = {}
        for name in ("dynamic", "dynamic-lcf"):
            cfg = RunConfig.experiment(4, 22, scheduler=name,
                                       process_partition=200, thread_partition=10)
            res[name] = run_simulated(nu, cfg)[1].makespan
        assert res["dynamic-lcf"] <= res["dynamic"] * 1.02
