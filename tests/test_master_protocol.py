"""Protocol-level tests of MasterPart against a scripted slave.

These drive the master's per-slave worker thread directly over a raw
channel — no SlavePart — to pin the wire protocol: idle -> assign,
result -> (new) assign, stale-epoch rejection, end-signal delivery.
"""

import threading

import pytest

from repro.algorithms import EditDistance
from repro.comm.messages import EndSignal, IdleSignal, TaskAssign, TaskResult
from repro.comm.transport import ChannelTimeout, channel_pair
from repro.dag.partition import partition_pattern
from repro.runtime.master import MasterPart
from repro.schedulers.policy import DynamicPolicy, make_policy
from repro.utils.errors import SchedulerError


@pytest.fixture
def problem():
    return EditDistance.random(20, 20, seed=1)


def start_master(problem, n_slaves=1, **kw):
    partition = partition_pattern(problem.pattern(), 10)  # 2x2 blocks
    masters, slaves = [], []
    for _ in range(n_slaves):
        m, s = channel_pair()
        masters.append(m)
        slaves.append(s)
    master = MasterPart(
        problem,
        partition,
        masters,
        make_policy("dynamic", n_slaves, partition.grid.n_block_cols),
        poll_interval=0.005,
        **kw,
    )
    state_box = {}

    def run():
        state_box["state"] = master.run()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return master, partition, slaves, thread, state_box


def obedient_slave(problem, partition, channel, slave_id=0):
    """Play the protocol correctly until the end signal."""
    while True:
        channel.send(IdleSignal(slave_id))
        msg = channel.recv(timeout=5.0)
        if isinstance(msg, EndSignal):
            return
        assert isinstance(msg, TaskAssign)
        ev = problem.evaluator(partition, msg.task_id, msg.inputs)
        outputs = ev.run_serial(partition.sub_partition(msg.task_id, 5))
        channel.send(TaskResult(msg.task_id, msg.epoch, slave_id, outputs))


class TestProtocol:
    def test_idle_gets_first_computable_task(self, problem):
        master, partition, (ch,), thread, _ = start_master(problem)
        ch.send(IdleSignal(0))
        msg = ch.recv(timeout=5.0)
        assert isinstance(msg, TaskAssign)
        assert msg.task_id == (0, 0)  # the only source of the wavefront
        assert msg.epoch == 0
        assert set(msg.inputs) == {"top", "left"}
        # Finish the run so the thread exits cleanly.
        obedient_slave_from(msg, problem, partition, ch)
        thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_full_run_through_scripted_slave(self, problem):
        master, partition, (ch,), thread, box = start_master(problem)
        obedient_slave(problem, partition, ch)
        thread.join(timeout=10.0)
        assert problem.finalize(box["state"]).distance == problem.reference()
        assert master.stats.tasks_per_worker == {0: 4}

    def test_stale_epoch_result_rejected(self, problem):
        master, partition, (ch,), thread, _ = start_master(problem)
        ch.send(IdleSignal(0))
        assign = ch.recv(timeout=5.0)
        # Reply with a WRONG epoch: must be dropped, task stays live.
        fake = problem.evaluator(partition, assign.task_id, assign.inputs).run_serial(
            partition.sub_partition(assign.task_id, 5)
        )
        ch.send(TaskResult(assign.task_id, assign.epoch + 7, 0, fake))
        # The master never completes (0,0) from that; give it a moment.
        import time

        time.sleep(0.1)
        assert master.stats.stale_results == 1
        assert master._register.is_registered(assign.task_id)
        # Now answer correctly and drain.
        ch.send(TaskResult(assign.task_id, assign.epoch, 0, fake))
        obedient_slave(problem, partition, ch)
        thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_two_slaves_share_the_wavefront(self, problem):
        master, partition, (ch0, ch1), thread, _ = start_master(problem, n_slaves=2)
        t0 = threading.Thread(target=obedient_slave, args=(problem, partition, ch0, 0))
        t1 = threading.Thread(target=obedient_slave, args=(problem, partition, ch1, 1))
        t0.start()
        t1.start()
        thread.join(timeout=10.0)
        t0.join(timeout=5.0)
        t1.join(timeout=5.0)
        done = sum(master.stats.tasks_per_worker.values())
        assert done == 4
        assert set(master.stats.tasks_per_worker) <= {0, 1}

    def test_timeout_redistributes_to_other_slave(self, problem):
        master, partition, (ch0, ch1), thread, box = start_master(
            problem, n_slaves=2, task_timeout=0.3
        )
        # Slave 0 grabs a task and goes silent forever.
        ch0.send(IdleSignal(0))
        _ = ch0.recv(timeout=5.0)
        # Slave 1 plays along and must end up doing all 4 blocks.
        obedient_slave(problem, partition, ch1, slave_id=1)
        thread.join(timeout=10.0)
        assert master.stats.faults_recovered >= 1
        assert master.stats.tasks_per_worker.get(1) == 4
        assert problem.finalize(box["state"]).distance == problem.reference()

    def test_policy_size_mismatch_rejected(self, problem):
        partition = partition_pattern(problem.pattern(), 10)
        m, _ = channel_pair()
        with pytest.raises(SchedulerError, match="sized for"):
            MasterPart(problem, partition, [m], DynamicPolicy(3))

    def test_no_channels_rejected(self, problem):
        partition = partition_pattern(problem.pattern(), 10)
        with pytest.raises(SchedulerError, match="at least one"):
            MasterPart(problem, partition, [], DynamicPolicy(1))


def obedient_slave_from(first_assign, problem, partition, channel, slave_id=0):
    """Continue the protocol after an already-received first assignment."""
    msg = first_assign
    while True:
        ev = problem.evaluator(partition, msg.task_id, msg.inputs)
        outputs = ev.run_serial(partition.sub_partition(msg.task_id, 5))
        channel.send(TaskResult(msg.task_id, msg.epoch, slave_id, outputs))
        channel.send(IdleSignal(slave_id))
        msg = channel.recv(timeout=5.0)
        if isinstance(msg, EndSignal):
            return


class TestBackendConsistency:
    def test_simulated_and_threads_agree_on_message_count(self, problem):
        """Same instance, same partition: both backends exchange idle +
        assign + result per executed task (plus final idle/end)."""
        from repro import EasyHPS, RunConfig
        from repro.backends.simulated import run_simulated

        threads_run = EasyHPS(
            RunConfig(nodes=3, threads_per_node=1, backend="threads",
                      process_partition=10, thread_partition=5)
        ).run(problem)
        _, sim_rep = run_simulated(
            problem,
            RunConfig.experiment(3, 9, process_partition=10, thread_partition=5),
        )
        # Sim counts exactly 3 per task; real adds the final idle+end pair
        # per slave (and nothing else without faults).
        assert sim_rep.messages == 3 * sim_rep.n_tasks
        expected_real = 3 * threads_run.report.n_tasks + 2 * 2  # 2 slaves
        assert threads_run.report.messages == expected_real
