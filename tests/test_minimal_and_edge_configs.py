"""Edge-configuration tests: the smallest and oddest setups must work.

The paper notes EasyHPS needs at least 4 cores; these tests pin the
minimal deployments and a collection of degenerate shapes across
backends that are easy to break in refactors.
"""

import numpy as np
import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import (
    EditDistance,
    Knapsack,
    Nussinov,
    SmithWatermanGG,
    ViterbiDecoding,
)
from repro.backends.simulated import run_simulated


class TestMinimalDeployments:
    def test_experiment_2_4_smallest_paper_config(self):
        """One computing thread on one computing node — the 4-core minimum."""
        sw = SmithWatermanGG.random(500, seed=1)
        cfg = RunConfig.experiment(2, 4, process_partition=100, thread_partition=25)
        _, rep = run_simulated(sw, cfg)
        assert rep.nodes == 2
        assert rep.threads_per_node == 1
        assert rep.total_cores == 4

    def test_single_slave_threads_backend(self):
        ed = EditDistance.random(40, 40, seed=2)
        run = EasyHPS(RunConfig(nodes=2, threads_per_node=1, backend="threads",
                                process_partition=10, thread_partition=5)).run(ed)
        assert run.value.distance == ed.reference()

    def test_more_slaves_than_blocks(self):
        """Five slaves, four blocks: someone never gets work — fine."""
        ed = EditDistance.random(20, 20, seed=3)
        run = EasyHPS(RunConfig(nodes=6, threads_per_node=1, backend="threads",
                                process_partition=10, thread_partition=5)).run(ed)
        assert run.value.distance == ed.reference()
        assert sum(run.report.tasks_per_worker.values()) == 4

    def test_more_threads_than_subblocks(self):
        ed = EditDistance.random(16, 16, seed=4)
        run = EasyHPS(RunConfig(nodes=2, threads_per_node=8, backend="threads",
                                process_partition=8, thread_partition=8)).run(ed)
        assert run.value.distance == ed.reference()


class TestDegenerateShapes:
    def test_one_character_sequences(self):
        ed = EditDistance("A", "G")
        run = EasyHPS(RunConfig(nodes=2, backend="threads",
                                process_partition=1, thread_partition=1)).run(ed)
        assert run.value.distance == 1

    def test_wildly_asymmetric_matrix(self):
        ed = EditDistance.random(3, 90, seed=5)
        run = EasyHPS(RunConfig(nodes=3, backend="threads",
                                process_partition=(3, 10), thread_partition=(1, 5))).run(ed)
        assert run.value.distance == ed.reference()

    def test_two_base_rna(self):
        nu = Nussinov("GC")
        run = EasyHPS(RunConfig(nodes=2, backend="threads",
                                process_partition=1, thread_partition=1)).run(nu)
        assert run.value.score == nu.reference()

    def test_single_item_knapsack(self):
        ks = Knapsack([3], [10.0], capacity=5)
        run = EasyHPS(RunConfig(nodes=2, backend="threads",
                                process_partition=1, thread_partition=1)).run(ks)
        assert run.value.value == 10.0

    def test_single_step_viterbi_simulated(self):
        vi = ViterbiDecoding.random(1, seed=6)
        cfg = RunConfig.experiment(2, 4, process_partition=1, thread_partition=1)
        _, rep = run_simulated(vi, cfg)
        assert rep.n_tasks == 1

    def test_partition_larger_than_problem(self):
        ed = EditDistance.random(5, 5, seed=7)
        run = EasyHPS(RunConfig(nodes=2, backend="threads",
                                process_partition=100, thread_partition=100)).run(ed)
        assert run.value.distance == ed.reference()
        assert run.report.n_tasks == 1


class TestReportEdges:
    def test_sim_report_on_single_block(self):
        ed = EditDistance.random(30, 30, seed=8)
        cfg = RunConfig.experiment(2, 4, process_partition=30, thread_partition=10)
        _, rep = run_simulated(ed, cfg)
        assert rep.n_tasks == 1
        assert rep.messages == 3
        assert rep.utilization > 0

    def test_speedup_against_itself_is_one(self):
        sw = SmithWatermanGG.random(300, seed=9)
        cfg = RunConfig.experiment(3, 9, process_partition=100, thread_partition=25)
        _, rep = run_simulated(sw, cfg)
        assert rep.speedup_vs(rep.makespan) == pytest.approx(1.0)

    def test_state_returned_for_real_backends_only(self):
        ed = EditDistance.random(30, 30, seed=10)
        real = EasyHPS(RunConfig(nodes=2, backend="threads",
                                 process_partition=10, thread_partition=5)).run(ed)
        assert isinstance(real.state["D"], np.ndarray)
        sim = EasyHPS(RunConfig.experiment(2, 4, process_partition=10,
                                           thread_partition=5)).run(ed)
        assert sim.state is None and sim.value is None
