"""Unit tests for the observability core: clocks, recorder, metrics."""

import threading

import pytest

from repro.cluster.simcore import EventQueue
from repro.obs.clock import MONOTONIC, Clock, ManualClock, MonotonicClock, SimClock, ensure_clock
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.recorder import (
    LIFECYCLE_KINDS,
    MESSAGE_KINDS,
    NULL_RECORDER,
    SCOPES,
    EventRecorder,
    NullRecorder,
    ObsEvent,
)


class TestClocks:
    def test_monotonic_clock_advances(self):
        clk = MonotonicClock()
        a = clk.now()
        b = clk.now()
        assert b >= a

    def test_manual_clock(self):
        clk = ManualClock()
        assert clk.now() == 0.0
        clk.advance(1.5)
        assert clk.now() == 1.5
        clk.set(10.0)
        assert clk.now() == 10.0

    def test_sim_clock_reads_event_queue(self):
        evq = EventQueue()
        clk = evq.clock()
        assert isinstance(clk, SimClock)
        assert clk.now() == 0.0
        seen = []
        evq.at(3.0, lambda: seen.append(clk.now()))
        evq.run()
        assert seen == [3.0]

    def test_ensure_clock(self):
        assert ensure_clock(None) is MONOTONIC
        clk = ManualClock()
        assert ensure_clock(clk) is clk
        assert isinstance(MONOTONIC, Clock)


class TestEventRecorder:
    def test_emit_stamps_with_injected_clock(self):
        clk = ManualClock()
        rec = EventRecorder(clk)
        clk.set(2.0)
        ev = rec.emit("assign", (0, 0), epoch=0, node=1, worker=3)
        assert ev.ts == 2.0
        assert ev.node == 1 and ev.worker == 3
        assert ev.scope == "task"

    def test_explicit_ts_overrides_clock(self):
        rec = EventRecorder(ManualClock())
        ev = rec.emit("send", (0, 0), ts=7.5, nbytes=128)
        assert ev.ts == 7.5
        assert ev.data == {"nbytes": 128}

    def test_seq_is_a_linearization(self):
        rec = EventRecorder(ManualClock())
        for k in range(5):
            rec.emit("assign", (0, k))
        assert [e.seq for e in rec.events()] == [0, 1, 2, 3, 4]
        assert len(rec) == 5

    def test_span_extraction(self):
        rec = EventRecorder(ManualClock())
        plain = rec.emit("commit", (0, 0))
        span = rec.emit("compute", (0, 0), t0=1.0, t1=2.5)
        assert plain.span() is None
        assert span.span() == (1.0, 2.5)

    def test_thread_safety(self):
        rec = EventRecorder()

        def emit_many(k):
            for _ in range(200):
                rec.emit("assign", (k, 0))

        threads = [threading.Thread(target=emit_many, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = rec.events()
        assert len(events) == 800
        assert sorted(e.seq for e in events) == list(range(800))

    def test_taxonomy_constants(self):
        assert "assign" in LIFECYCLE_KINDS and "commit" in LIFECYCLE_KINDS
        assert set(MESSAGE_KINDS) == {"msg-send", "msg-recv"}
        assert set(SCOPES) == {"task", "subtask", "message"}


class TestNullRecorder:
    def test_disabled_and_empty(self):
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.emit("assign", (0, 0), nbytes=1) is None
        assert NULL_RECORDER.events() == ()
        assert len(NULL_RECORDER) == 0

    def test_shared_singleton_is_stateless(self):
        # __slots__ = () — the null recorder cannot accumulate storage.
        assert NullRecorder.__slots__ == ()
        with pytest.raises(AttributeError):
            NULL_RECORDER.anything = 1


class TestMetrics:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge()
        g.set(4)
        g.add(-1.5)
        assert g.value == 2.5

    def test_histogram_moments(self):
        h = Histogram()
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["min"] == 1.0 and s["max"] == 3.0
        assert s["mean"] == pytest.approx(2.0)

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("tasks", node=0)
        b = reg.counter("tasks", node=0)
        other = reg.counter("tasks", node=1)
        assert a is b and a is not other

    def test_snapshot_label_formatting(self):
        reg = MetricsRegistry()
        reg.counter("tasks", node=0).inc(3)
        reg.counter("plain").inc()
        reg.gauge("depth").set(7)
        reg.histogram("dur").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"]["tasks{node=0}"] == 3
        assert snap["counters"]["plain"] == 1
        assert snap["gauges"]["depth"] == 7
        assert snap["histograms"]["dur"]["count"] == 1
        assert "tasks{node=0}" in reg.names()


class TestObsEvent:
    def test_defaults(self):
        ev = ObsEvent(kind="assign", ts=0.0)
        assert ev.task_id is None and ev.epoch == -1
        assert ev.node == -1 and ev.worker == -1
        assert ev.scope == "task" and ev.data is None
