"""Exporter tests: Perfetto JSON schema, lossless round-trip, bridges."""

import json

import pytest

from repro.check.trace_check import EVENT_KINDS, check_trace
from repro.dag.library import get_pattern
from repro.obs.export import (
    TRACE_FORMAT,
    event_from_json,
    event_to_json,
    read_trace,
    to_chrome_trace,
    to_gantt_trace,
    to_sched_events,
    write_trace,
)
from repro.obs.clock import ManualClock
from repro.obs.recorder import EventRecorder, ObsEvent
from repro.obs.stats import compute_stats, format_stats, text_summary


def _lifecycle_stream():
    """A two-task, two-node stream covering spans, instants and messages."""
    clk = ManualClock()
    rec = EventRecorder(clk)
    for k, task in enumerate(((0, 0), (0, 1))):
        base = k * 10.0
        rec.emit("assign", task, epoch=0, node=-1, worker=k, ts=base)
        rec.emit("send", task, epoch=0, node=k, worker=k, ts=base,
                 t0=base, t1=base + 1.0, nbytes=100)
        rec.emit("msg-send", task, epoch=0, node=k, scope="message",
                 ts=base, nbytes=108, type="TaskAssign", endpoint=f"slave{k}")
        rec.emit("compute", task, epoch=0, node=k, worker=k, ts=base + 3.0,
                 t0=base + 1.0, t1=base + 3.0)
        rec.emit("result", task, epoch=0, node=k, worker=k, ts=base + 4.0, nbytes=50)
        rec.emit("commit", task, epoch=0, node=-1, worker=k, ts=base + 4.0)
    return rec.events()


class TestChromeTrace:
    def test_schema(self):
        doc = to_chrome_trace(_lifecycle_stream(), metrics={"counters": {"x": 1}})
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["format"] == TRACE_FORMAT
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"X", "i", "M"}
        for e in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert e["dur"] >= 0 and e["ts"] >= 0
            elif e["ph"] == "i":
                assert e["s"] == "t"
        # Metadata names the master (pid 0) and both nodes.
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M" and e["name"] == "process_name"]
        labels = {e["args"]["name"] for e in meta}
        assert {"master", "node 0", "node 1"} <= labels

    def test_timestamps_rebased_to_origin(self):
        events = _lifecycle_stream()
        doc = to_chrome_trace(events)
        slices = [e for e in doc["traceEvents"] if e["ph"] in ("X", "i")]
        assert min(e["ts"] for e in slices) == 0.0

    def test_document_is_json_serializable(self):
        doc = to_chrome_trace(_lifecycle_stream())
        json.dumps(doc)


class TestRoundTrip:
    def test_event_json_round_trip(self):
        ev = ObsEvent(kind="compute", ts=1.5, task_id=(2, 3), epoch=1, node=0,
                      worker=2, scope="task", seq=7, data={"t0": 1.0, "t1": 1.5})
        clone = event_from_json(json.loads(json.dumps(event_to_json(ev))))
        assert clone == ev

    def test_write_read_round_trip(self, tmp_path):
        events = _lifecycle_stream()
        metrics = {"counters": {"tasks": 2.0}, "gauges": {}, "histograms": {}}
        path = str(tmp_path / "trace.json")
        write_trace(path, events, metrics=metrics, meta={"backend": "threads"})
        back, back_metrics, meta = read_trace(path)
        assert back == events
        assert back_metrics == metrics
        assert meta["backend"] == "threads"
        assert meta["format"] == TRACE_FORMAT

    def test_read_rejects_foreign_chrome_trace(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(ValueError, match="repro"):
            read_trace(str(path))


class TestBridges:
    def test_to_sched_events_feeds_check_trace(self):
        events = _lifecycle_stream()
        sched = to_sched_events(events)
        assert all(s.kind in EVENT_KINDS for s in sched)
        # Two tasks of the 1x2 chain: assign+commit each.
        assert [s.kind for s in sched] == ["assign", "commit", "assign", "commit"]
        pattern = get_pattern("wavefront", 1, 2)
        check_trace(sched, pattern, title="bridge").raise_if_failed()

    def test_to_gantt_trace_rows(self):
        rows = to_gantt_trace(_lifecycle_stream())
        assert len(rows) == 2
        for row in rows:
            assert row.transfer_start <= row.compute_start
            assert row.compute_start <= row.compute_end <= row.result_at
        assert {r.node for r in rows} == {0, 1}

    def test_gantt_skips_uncommitted_epochs(self):
        clk = ManualClock()
        rec = EventRecorder(clk)
        # Epoch 0 times out (no commit); epoch 1 commits.
        rec.emit("assign", (0, 0), epoch=0, node=0, ts=0.0)
        rec.emit("compute", (0, 0), epoch=0, node=0, ts=1.0, t0=0.0, t1=1.0)
        rec.emit("redistribute", (0, 0), epoch=0, ts=5.0)
        rec.emit("assign", (0, 0), epoch=1, node=1, ts=5.0)
        rec.emit("compute", (0, 0), epoch=1, node=1, ts=6.0, t0=5.0, t1=6.0)
        rec.emit("commit", (0, 0), epoch=1, node=1, ts=6.0)
        rows = to_gantt_trace(rec.events())
        assert len(rows) == 1
        assert rows[0].node == 1


class TestStats:
    def test_compute_stats(self):
        stats = compute_stats(_lifecycle_stream())
        assert stats.tasks_committed == 2
        assert stats.extent == pytest.approx(14.0)
        assert stats.nodes[0].busy_seconds == pytest.approx(2.0)
        assert stats.nodes[1].busy_seconds == pytest.approx(2.0)
        assert stats.nodes[0].idle_seconds == pytest.approx(12.0)
        # Message-scope events take precedence for wire accounting.
        assert stats.messages_sent == 2
        assert stats.bytes_to_slaves == 216

    def test_task_scope_fallback_for_bytes(self):
        events = tuple(e for e in _lifecycle_stream() if e.scope != "message")
        stats = compute_stats(events)
        assert stats.messages_sent == 0
        assert stats.bytes_to_slaves == 200  # from task-scope send nbytes
        assert stats.bytes_to_master == 100  # from task-scope result nbytes

    def test_format_stats_mentions_required_lines(self):
        text = format_stats(compute_stats(_lifecycle_stream()), title="t")
        assert "per-worker busy/idle" in text
        assert "bytes on wire" in text

    def test_text_summary_appends_metrics(self):
        text = text_summary(
            _lifecycle_stream(),
            {"counters": {"comm.messages_sent{endpoint=slave0}": 3.0}, "gauges": {}},
        )
        assert "metrics:" in text
        assert "comm.messages_sent{endpoint=slave0} = 3" in text
