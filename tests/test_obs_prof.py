"""Profiler tests: PROF kinds round-trip, critical path, attribution,
link calibration, what-if replay, histogram percentiles, partial traces."""

import json
import math

import pytest

from repro.analysis.calibration import (
    LinkSample,
    fit_link,
    link_fit_report,
    link_samples_from_events,
)
from repro.cluster.network import LinkModel
from repro.dag.library import get_pattern
from repro.obs.clock import ManualClock
from repro.obs.export import read_trace, to_chrome_trace, write_trace
from repro.obs.metrics import Histogram
from repro.obs.prof import (
    BUCKETS,
    build_profile,
    format_perf_report,
    replay_schedule,
    what_if,
)
from repro.obs.recorder import PROF_KINDS, EventRecorder
from repro.obs.stats import compute_stats, format_stats
from repro.utils.errors import ConfigError


def _prof_stream():
    """One task's lifecycle plus every profiling span kind."""
    rec = EventRecorder(ManualClock())
    t = (0, 0)
    rec.emit("assign", t, epoch=0, node=-1, worker=0, ts=1.0)
    rec.emit("batch-assemble", None, node=-1, worker=0, ts=0.9, t0=0.8, t1=0.9,
             n_tasks=1)
    rec.emit("queue-wait", t, epoch=0, node=-1, worker=0, ts=1.0, t0=0.25, t1=1.0)
    rec.emit("shm-attach", t, epoch=0, node=-1, worker=0, scope="message",
             ts=1.3, t0=1.2, t1=1.3, ok=True, nbytes=4096)
    rec.emit("digest-compute", t, epoch=0, node=-1, worker=0,
             ts=1.1, t0=1.0, t1=1.1, hop="assign")
    rec.emit("compute", t, epoch=0, node=0, worker=0, ts=3.0, t0=1.5, t1=3.0)
    rec.emit("journal-write", t, epoch=0, node=-1, ts=3.5, t0=3.2, t1=3.5, nbytes=512)
    rec.emit("commit", t, epoch=0, node=-1, worker=0, ts=3.6)
    return rec.events()


class TestProfKindsExport:
    def test_round_trip_through_trace_file(self, tmp_path):
        events = _prof_stream()
        path = tmp_path / "trace.json"
        write_trace(str(path), events, meta={"backend": "test"})
        back, _metrics, meta = read_trace(str(path))
        assert back == events
        assert meta["backend"] == "test"

    def test_prof_spans_become_perfetto_slices(self):
        doc = to_chrome_trace(_prof_stream())
        for kind in PROF_KINDS:
            slices = [
                e for e in doc["traceEvents"]
                if e["ph"] == "X" and e["name"].startswith(kind)
            ]
            assert slices, f"{kind} produced no X slice"
            assert all(s["dur"] > 0 for s in slices)

    def test_chrome_json_is_serializable(self):
        json.dumps(to_chrome_trace(_prof_stream()))


class TestCriticalPath:
    """Hand-built 2x2 wavefront with a known longest chain."""

    def _events(self):
        # Costs: (0,0)=1.0, (0,1)=5.0, (1,0)=1.0, (1,1)=2.0; the longest
        # chain is (0,0) -> (0,1) -> (1,1) = 8.0 seconds.
        costs = {(0, 0): 1.0, (0, 1): 5.0, (1, 0): 1.0, (1, 1): 2.0}
        starts = {(0, 0): 0.0, (0, 1): 1.0, (1, 0): 1.0, (1, 1): 6.0}
        rec = EventRecorder(ManualClock())
        for t, dur in costs.items():
            t0 = starts[t]
            rec.emit("assign", t, epoch=0, node=-1, worker=0, ts=t0)
            rec.emit("compute", t, epoch=0, node=0, worker=0,
                     ts=t0 + dur, t0=t0, t1=t0 + dur)
            rec.emit("commit", t, epoch=0, node=-1, worker=0, ts=t0 + dur)
        return rec.events()

    def test_longest_chain_found(self):
        pattern = get_pattern("wavefront", 2, 2)
        prof = build_profile(self._events(), pattern)
        assert prof.critical_path == [(0, 0), (0, 1), (1, 1)]
        assert prof.critical_path_seconds == pytest.approx(8.0)

    def test_efficiency_is_cp_over_makespan(self):
        pattern = get_pattern("wavefront", 2, 2)
        prof = build_profile(self._events(), pattern)
        assert prof.extent == pytest.approx(8.0)  # trace spans 0..8
        assert prof.efficiency == pytest.approx(1.0)

    def test_without_pattern_no_critical_path(self):
        prof = build_profile(self._events(), None)
        assert prof.critical_path == []
        assert prof.efficiency == 0.0
        assert prof.n_committed == 4

    def test_report_mentions_critical_path(self):
        pattern = get_pattern("wavefront", 2, 2)
        prof = build_profile(self._events(), pattern)
        text = format_perf_report(prof, pattern=pattern)
        assert "critical path" in text
        assert "sched efficiency" in text
        assert "what-if" in text


class TestAttribution:
    def test_rows_sum_to_extent(self):
        prof = build_profile(_prof_stream())
        assert prof.extent > 0
        for node, row in prof.attribution.items():
            assert set(row) == set(BUCKETS)
            assert sum(row.values()) == pytest.approx(prof.extent), node

    def test_master_lane_buckets(self):
        prof = build_profile(_prof_stream())
        master = prof.attribution[-1]
        assert master["journal"] == pytest.approx(0.3)
        assert master["digest"] == pytest.approx(0.1)
        worker = prof.attribution[0]
        assert worker["compute"] == pytest.approx(1.5)

    def test_queue_wait_distribution(self):
        prof = build_profile(_prof_stream())
        assert prof.queue_wait.count == 1
        assert prof.queue_wait.total == pytest.approx(0.75)

    def test_real_run_buckets_sum_to_wall_time(self, tmp_path):
        """The acceptance criterion: every lane accounts >= 95% of the
        trace extent on a real journaled threads run."""
        from repro.algorithms import EditDistance
        from repro.runtime.config import RunConfig
        from repro.runtime.system import EasyHPS

        problem = EditDistance("kitten" * 8, "sitting" * 8)
        cfg = RunConfig(
            nodes=2, threads_per_node=2, backend="threads", observe=True,
            journal_path=str(tmp_path / "run.journal"),
        )
        res = EasyHPS().run(problem, cfg)
        proc, _ = cfg.partitions_for(problem)
        pattern = problem.build_partition(proc).abstract
        prof = build_profile(res.report.events, pattern)
        assert prof.extent > 0
        assert prof.critical_path
        assert 0.0 < prof.efficiency <= 1.0
        for node, row in prof.attribution.items():
            assert sum(row.values()) >= 0.95 * prof.extent, node
        master = prof.attribution[-1]
        assert master["journal"] > 0  # journal-write spans made it through


class TestReplay:
    def test_more_workers_never_slower(self):
        pattern = get_pattern("wavefront", 4, 4)
        rec = EventRecorder(ManualClock())
        for i in range(4):
            for j in range(4):
                t0 = float(i + j)
                rec.emit("compute", (i, j), epoch=0, node=0, worker=0,
                         ts=t0 + 1.0, t0=t0, t1=t0 + 1.0)
                rec.emit("commit", (i, j), epoch=0, node=-1, ts=t0 + 1.0)
        prof = build_profile(rec.events(), pattern)
        last = math.inf
        for n in (1, 2, 4, 8):
            est = replay_schedule(prof.tasks, pattern, n)
            assert est <= last + 1e-12
            last = est
        # A 4x4 wavefront of unit tasks has a 7-task critical path.
        assert replay_schedule(prof.tasks, pattern, 16) == pytest.approx(7.0)

    def test_zero_comm_bound_is_faster_or_equal(self):
        pattern = get_pattern("wavefront", 3, 3)
        rec = EventRecorder(ManualClock())
        for i in range(3):
            for j in range(3):
                t0 = float(i + j)
                rec.emit("send", (i, j), epoch=0, node=0, ts=t0,
                         t0=t0, t1=t0 + 0.5, nbytes=100)
                rec.emit("compute", (i, j), epoch=0, node=0, worker=0,
                         ts=t0 + 1.0, t0=t0 + 0.5, t1=t0 + 1.0)
                rec.emit("commit", (i, j), epoch=0, node=-1, ts=t0 + 1.0)
        prof = build_profile(rec.events(), pattern)
        with_comm = replay_schedule(prof.tasks, pattern, 2)
        without = replay_schedule(prof.tasks, pattern, 2, comm_scale=0.0)
        assert without < with_comm
        scenarios = dict(what_if(prof, pattern, extra_workers=(1,)))
        assert len(scenarios) == 3

    def test_replay_rejects_zero_workers(self):
        with pytest.raises(ConfigError):
            replay_schedule({}, get_pattern("wavefront", 2, 2), 0)


class TestLinkCalibration:
    def test_fit_recovers_known_model(self):
        model = LinkModel(latency=1e-4, bandwidth=1e8)
        samples = [
            LinkSample(nbytes=n, seconds=model.transfer_time(n))
            for n in (100, 1_000, 10_000, 100_000, 1_000_000)
        ]
        fitted = fit_link(samples)
        assert fitted.latency == pytest.approx(model.latency, rel=1e-6)
        assert fitted.bandwidth == pytest.approx(model.bandwidth, rel=1e-6)

    def test_fit_needs_two_samples_and_size_spread(self):
        with pytest.raises(ConfigError):
            fit_link([LinkSample(nbytes=10, seconds=1.0)])
        with pytest.raises(ConfigError):
            fit_link([LinkSample(10, 1.0), LinkSample(10, 2.0)])

    def test_samples_from_msg_send_events(self):
        rec = EventRecorder(ManualClock())
        rec.emit("msg-send", (0, 0), epoch=0, scope="message",
                 nbytes=1000, type="TaskAssign", t_wire=1e-5, t_ser=1e-6)
        rec.emit("msg-send", (0, 1), epoch=0, scope="message",
                 nbytes=2000, type="TaskAssign", t_wire=2e-5, t_ser=2e-6)
        rec.emit("msg-recv", (0, 0), epoch=0, scope="message", nbytes=500)
        samples = link_samples_from_events(rec.events())
        assert [s.nbytes for s in samples] == [1000, 2000]
        assert samples[0].seconds == pytest.approx(1.1e-5)

    def test_samples_fall_back_to_sim_send_spans(self):
        rec = EventRecorder(ManualClock())
        rec.emit("send", (0, 0), epoch=0, node=0, ts=0.0, t0=0.0, t1=0.25, nbytes=100)
        samples = link_samples_from_events(rec.events())
        assert samples == [LinkSample(nbytes=100, seconds=0.25)]

    def test_report_mentions_reference_diff(self):
        model = LinkModel(latency=1e-4, bandwidth=1e8)
        samples = [
            LinkSample(nbytes=n, seconds=model.transfer_time(n))
            for n in (100, 10_000, 1_000_000)
        ]
        text = link_fit_report(samples, reference=LinkModel(2e-6, 3.2e9))
        assert "fitted vs reference" in text


class TestHistogramPercentiles:
    def test_exact_on_small_samples(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0.50) == pytest.approx(50.5)
        assert h.percentile(0.95) == pytest.approx(95.05)
        assert h.percentile(1.0) == 100.0
        assert h.percentile(0.0) == 1.0

    def test_summary_includes_percentiles(self):
        h = Histogram()
        h.observe(1.0)
        h.observe(3.0)
        s = h.summary()
        assert {"p50", "p95", "p99"} <= set(s)
        assert s["p50"] == pytest.approx(2.0)

    def test_reservoir_stays_bounded_and_representative(self):
        h = Histogram()
        n = Histogram.SAMPLE_CAP * 8
        for v in range(n):
            h.observe(float(v))
        assert len(h._samples) <= Histogram.SAMPLE_CAP
        assert h.count == n
        # Systematic thinning keeps the quantiles honest.
        assert h.percentile(0.5) == pytest.approx(n / 2, rel=0.05)
        assert h.percentile(0.99) == pytest.approx(0.99 * n, rel=0.05)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)


class TestPartialTraces:
    def test_compute_stats_never_raises_on_truncation(self):
        events = _prof_stream()
        for cut in range(len(events) + 1):
            stats = compute_stats(events[:cut])
            format_stats(stats)  # must render too

    def test_coverage_note_on_incomplete_tasks(self):
        rec = EventRecorder(ManualClock())
        rec.emit("assign", (0, 0), epoch=0, node=-1, worker=0, ts=0.0)
        rec.emit("assign", (0, 1), epoch=0, node=-1, worker=1, ts=0.5)
        rec.emit("commit", (0, 0), epoch=0, node=-1, worker=0, ts=1.0)
        stats = compute_stats(rec.events())
        assert stats.tasks_assigned == 2
        assert stats.tasks_incomplete == 1
        text = format_stats(stats)
        assert "PARTIAL" in text
        assert "event kinds" in text

    def test_complete_trace_has_no_coverage_note(self):
        stats = compute_stats(_prof_stream())
        assert stats.tasks_incomplete == 0
        assert "PARTIAL" not in format_stats(stats)

    def test_malformed_payload_fields_degrade_to_zero(self):
        rec = EventRecorder(ManualClock())
        rec.emit("send", (0, 0), epoch=0, node=0, ts=0.0, nbytes="junk")
        rec.emit("msg-send", (0, 0), epoch=0, scope="message", nbytes=None)
        stats = compute_stats(rec.events())
        assert stats.bytes_to_slaves == 0

    def test_build_profile_tolerates_partial_trace(self):
        events = _prof_stream()
        pattern = get_pattern("wavefront", 2, 2)
        for cut in range(len(events) + 1):
            prof = build_profile(events[:cut], pattern)
            format_perf_report(prof, pattern=pattern)

    def test_stats_percentile_lines_present(self):
        rec = EventRecorder(ManualClock())
        rec.emit("queue-wait", (0, 0), epoch=0, ts=1.0, t0=0.0, t1=1.0)
        rec.emit("msg-send", (0, 0), epoch=0, scope="message",
                 nbytes=10, t_wire=1e-5, t_ser=1e-6)
        text = format_stats(compute_stats(rec.events()))
        assert "queue wait" in text
        assert "msg latency" in text
