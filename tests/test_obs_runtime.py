"""End-to-end telemetry tests across backends, plus the overhead guard."""

import json
import random

import pytest

from repro.algorithms import SmithWatermanGG
from repro.check.trace_check import check_trace
from repro.obs.export import read_trace, to_sched_events, write_trace
from repro.obs.recorder import LIFECYCLE_KINDS, NULL_RECORDER
from repro.runtime.config import RunConfig
from repro.runtime.system import EasyHPS

BACKENDS = ("serial", "threads", "processes", "simulated")

#: The canonical task lifecycle every backend must emit per committed task.
CANONICAL = ("assign", "send", "compute", "result", "commit")


def _swgg(n=48, seed=1):
    rng = random.Random(seed)
    a = "".join(rng.choice("ACGT") for _ in range(n))
    b = "".join(rng.choice("ACGT") for _ in range(n))
    return SmithWatermanGG(a, b)


def _run(backend, **overrides):
    base = dict(nodes=3, threads_per_node=2, backend=backend)
    base.update(overrides)
    return EasyHPS().run(_swgg(), RunConfig(**base))


def _per_task_kinds(events):
    # Lifecycle kinds only: the stream also carries task-scoped profiling
    # spans (queue-wait, digest-compute, journal-write) when observing.
    out = {}
    for ev in sorted(events, key=lambda e: e.seq):
        if ev.scope == "task" and ev.task_id is not None and ev.kind in LIFECYCLE_KINDS:
            out.setdefault((ev.task_id, ev.epoch), []).append(ev.kind)
    return out


class TestCrossBackendIdentity:
    @pytest.fixture(scope="class")
    def runs(self):
        return {b: _run(b, observe=True) for b in BACKENDS}

    def test_every_backend_emits_canonical_lifecycle(self, runs):
        for backend, res in runs.items():
            per_task = _per_task_kinds(res.report.events)
            assert per_task, backend
            sequences = {tuple(v) for v in per_task.values()}
            assert sequences == {CANONICAL}, backend

    def test_same_task_set_everywhere(self, runs):
        task_sets = {
            b: {t for (t, _e) in _per_task_kinds(r.report.events)}
            for b, r in runs.items()
        }
        reference = task_sets["serial"]
        assert reference
        for backend, tasks in task_sets.items():
            assert tasks == reference, backend

    def test_commit_order_is_a_valid_dag_linearization(self, runs):
        problem = _swgg()
        for backend, res in runs.items():
            cfg = RunConfig(nodes=3, threads_per_node=2, backend=backend)
            proc_size, _ = cfg.partitions_for(problem)
            pattern = problem.build_partition(proc_size).abstract
            sched = to_sched_events(res.report.events)
            report = check_trace(sched, pattern, title=f"obs-{backend}")
            assert report.ok, f"{backend}: {report.diagnostics}"

    def test_trace_flag_yields_gantt_rows_on_every_backend(self):
        from repro.analysis.gantt import render_gantt

        for backend in BACKENDS:
            res = _run(backend, trace=True)
            trace = res.report.trace
            assert trace is not None and len(trace) == res.report.n_tasks, backend
            for row in trace:
                assert row.transfer_start <= row.compute_start
                assert row.compute_start <= row.compute_end <= row.result_at
            art = render_gantt(trace, width=40, makespan=res.report.makespan)
            assert "node" in art


class TestOverheadGuard:
    def test_disabled_run_attaches_no_telemetry(self):
        res = _run("threads")  # observe defaults to False
        assert res.report.events is None
        assert res.report.metrics is None
        assert res.report.trace is None

    def test_disabled_run_instantiates_no_recorder(self, monkeypatch):
        """The disabled path must never build an EventRecorder at all."""
        import repro.backends.processes as processes_mod
        import repro.backends.serial as serial_mod
        import repro.backends.simulated as simulated_mod
        import repro.backends.threads as threads_mod

        def explode(*args, **kwargs):
            raise AssertionError("EventRecorder built on a disabled run")

        for mod in (threads_mod, processes_mod, serial_mod, simulated_mod):
            monkeypatch.setattr(mod, "EventRecorder", explode)
            monkeypatch.setattr(mod, "MetricsRegistry", explode)
        for backend in BACKENDS:
            _run(backend)

    def test_disabled_runtime_parts_share_the_null_recorder(self):
        """No per-run recorder objects exist when observation is off."""
        from repro.comm.transport import channel_pair
        from repro.runtime.master import MasterPart
        from repro.schedulers.policy import make_policy

        problem = _swgg()
        cfg = RunConfig(nodes=3, threads_per_node=2, backend="threads")
        proc_size, _ = cfg.partitions_for(problem)
        partition = problem.build_partition(proc_size)
        policy = make_policy("dynamic", 2, partition.grid.n_block_cols)
        channels = [channel_pair()[0] for _ in range(2)]
        master = MasterPart(problem, partition, channels, policy)
        assert master.sched.obs is NULL_RECORDER
        assert all(ch._obs is NULL_RECORDER for ch in channels)

    def test_null_emit_allocates_no_event(self):
        assert NULL_RECORDER.emit("assign", (0, 0), epoch=0, nbytes=4) is None
        assert NULL_RECORDER.events() == ()


class TestTraceFileEndToEnd:
    def test_exported_processes_trace_passes_check_trace(self, tmp_path):
        res = _run("processes", observe=True)
        path = str(tmp_path / "trace.json")
        write_trace(path, res.report.events, metrics=res.report.metrics)
        events, metrics, _meta = read_trace(path)
        assert events == res.report.events
        problem = _swgg()
        cfg = RunConfig(nodes=3, threads_per_node=2, backend="processes")
        proc_size, _ = cfg.partitions_for(problem)
        pattern = problem.build_partition(proc_size).abstract
        check_trace(to_sched_events(events), pattern, title="file").raise_if_failed()
        assert metrics["counters"]

    def test_file_is_perfetto_loadable_json(self, tmp_path):
        res = _run("serial", observe=True)
        path = tmp_path / "trace.json"
        write_trace(str(path), res.report.events)
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]


class TestCli:
    def test_run_trace_out_then_stats(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "trace.json")
        rc = main([
            "run", "--algo", "swgg", "--backend", "threads", "--size", "48",
            "--nodes", "3", "--threads", "2", "--trace-out", path,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace written" in out
        assert "telemetry" in out

        rc = main(["stats", path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-worker busy/idle" in out
        assert "bytes on wire" in out

    def test_stats_rejects_non_trace_file(self, tmp_path):
        from repro.cli import main

        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        with pytest.raises(SystemExit):
            main(["stats", str(bogus)])
