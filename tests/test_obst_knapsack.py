"""Tests for the optimal-BST and knapsack extension algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EasyHPS, RunConfig
from repro.algorithms import Knapsack, OptimalBST
from repro.dag.library import ChainPattern, TriangularPattern


def run_blocked(problem, proc, thread):
    part = problem.build_partition(proc)
    state = problem.make_state()
    for bid in part.abstract.topological_order():
        inputs = problem.extract_inputs(state, part, bid)
        ev = problem.evaluator(part, bid, inputs)
        outputs = ev.run_serial(part.sub_partition(bid, thread))
        problem.apply_result(state, part, bid, outputs)
    return problem.finalize(state), state


class TestOptimalBST:
    def test_blocked_equals_reference(self):
        obst = OptimalBST.random(25, seed=1)
        res, _ = run_blocked(obst, 7, 3)
        assert np.isclose(res.cost, obst.reference())

    def test_clrs_style_example(self):
        # Keys with frequencies; hand-checkable small case.
        obst = OptimalBST([34, 8, 50])
        res, _ = run_blocked(obst, 2, 1)
        # Best tree: root key0? cost = w(0,2) + min over roots.
        assert np.isclose(res.cost, obst.reference())
        # Heaviest key (index 2, freq 50) should sit at depth <= 2.
        assert res.depth_of(2) <= 2

    def test_tree_is_valid_bst_covering_all_keys(self):
        obst = OptimalBST.random(15, seed=2)
        res, _ = run_blocked(obst, 5, 2)
        seen = []

        def walk(node, lo, hi):
            if node is None:
                return
            root, left, right = node
            assert lo <= root <= hi
            seen.append(root)
            walk(left, lo, root - 1)
            walk(right, root + 1, hi)

        walk(res.tree, 0, 14)
        assert sorted(seen) == list(range(15))

    def test_tree_cost_reproduces_reported_cost(self):
        obst = OptimalBST.random(12, seed=3)
        res, _ = run_blocked(obst, 4, 2)
        total = sum(obst.freq[k] * res.depth_of(k) for k in range(12))
        assert np.isclose(total, res.cost)

    def test_single_key(self):
        res, _ = run_blocked(OptimalBST([7.0]), 1, 1)
        assert res.cost == 7.0
        assert res.tree == (0, None, None)

    def test_uniform_frequencies_give_balanced_depth(self):
        obst = OptimalBST([1.0] * 15)
        res, _ = run_blocked(obst, 5, 2)
        max_depth = max(res.depth_of(k) for k in range(15))
        assert max_depth <= 4  # perfectly balanced over 15 keys

    def test_pattern(self):
        assert isinstance(OptimalBST.random(8, seed=0).pattern(), TriangularPattern)

    def test_validation(self):
        with pytest.raises(ValueError):
            OptimalBST([])
        with pytest.raises(ValueError):
            OptimalBST([1.0, -2.0])

    @given(n=st.integers(1, 16), proc=st.integers(1, 6), seed=st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_property_blocked_equals_reference(self, n, proc, seed):
        obst = OptimalBST.random(n, seed=seed)
        res, _ = run_blocked(obst, proc, max(1, proc // 2))
        assert np.isclose(res.cost, obst.reference())


class TestKnapsack:
    def test_blocked_equals_reference(self):
        ks = Knapsack.random(30, seed=1)
        res, _ = run_blocked(ks, 8, 3)
        assert np.isclose(res.value, ks.reference())

    def test_chosen_set_is_feasible_and_rescoreable(self):
        ks = Knapsack.random(25, seed=2)
        res, _ = run_blocked(ks, 6, 2)
        assert res.total_weight(ks.weights) <= ks.capacity
        assert np.isclose(sum(ks.values[i] for i in res.chosen), res.value)

    def test_known_case(self):
        ks = Knapsack(weights=[1, 3, 4, 5], values=[1, 4, 5, 7], capacity=7)
        res, _ = run_blocked(ks, 2, 1)
        assert res.value == 9  # items {3kg, 4kg}
        assert set(res.chosen) == {1, 2}

    def test_zero_capacity(self):
        ks = Knapsack([2, 3], [10, 10], capacity=0)
        res, _ = run_blocked(ks, 1, 1)
        assert res.value == 0
        assert res.chosen == ()

    def test_oversized_items_skipped(self):
        ks = Knapsack([100, 2], [999, 5], capacity=10)
        res, _ = run_blocked(ks, 1, 1)
        assert res.value == 5

    def test_pattern_is_chain(self):
        assert isinstance(Knapsack.random(10, seed=0).pattern(), ChainPattern)

    def test_through_threads_backend(self):
        ks = Knapsack.random(40, seed=3)
        run = EasyHPS(RunConfig(nodes=3, threads_per_node=2, backend="threads",
                                process_partition=8, thread_partition=2)).run(ks)
        assert np.isclose(run.value.value, ks.reference())

    def test_validation(self):
        with pytest.raises(ValueError):
            Knapsack([], [], 5)
        with pytest.raises(ValueError):
            Knapsack([0], [1.0], 5)
        with pytest.raises(ValueError):
            Knapsack([1], [1.0], -1)

    @given(n=st.integers(1, 20), proc=st.integers(1, 8), seed=st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_property_blocked_equals_reference(self, n, proc, seed):
        ks = Knapsack.random(n, seed=seed)
        res, _ = run_blocked(ks, proc, max(1, proc // 2))
        assert np.isclose(res.value, ks.reference())
