"""Scaled-down reproductions of the paper's experimental findings, as tests.

Each test asserts the *shape* of a figure at reduced problem size so the
suite stays fast; the full-scale series live in ``benchmarks/``. Shapes
pinned here:

- Figs 13/14: elapsed time falls monotonically(ish) as cores grow;
- Fig 15: fewer nodes win at low core counts, more nodes at high ones;
- Fig 16: substantial speedup at 50 cores, SWGG scaling beyond Nussinov;
- Fig 17: BCW/EasyHPS ratio >= ~1 everywhere, > 1 somewhere.
"""

import pytest

from repro import RunConfig
from repro.algorithms import Nussinov, SmithWatermanGG
from repro.analysis.figures import Series, crossover_points
from repro.backends.simulated import (
    experiment_series,
    paper_core_range,
    run_simulated,
    simulated_serial_makespan,
)

SEQ_LEN = 4000
PART = dict(process_partition=200, thread_partition=10)


@pytest.fixture(scope="module")
def swgg():
    return SmithWatermanGG.random(SEQ_LEN, seed=1)


@pytest.fixture(scope="module")
def nussinov():
    return Nussinov.random(SEQ_LEN, seed=2)


class TestFig13Fig14TimeReduction:
    @pytest.mark.parametrize("nodes", [2, 3, 4, 5])
    def test_swgg_elapsed_time_decreases(self, swgg, nodes):
        cores = paper_core_range(nodes)[::3]  # thin the sweep for speed
        results = experiment_series(swgg, nodes, cores, **PART)
        times = [r.makespan for _, r in results]
        assert len(times) >= 3
        assert times[-1] < times[0]
        # Allow small non-monotone wiggles (the paper's curves have them),
        # but the trend must dominate.
        assert all(b < a * 1.05 for a, b in zip(times, times[1:]))

    def test_nussinov_elapsed_time_decreases(self, nussinov):
        results = experiment_series(nussinov, 3, paper_core_range(3)[::3], **PART)
        times = [r.makespan for _, r in results]
        assert times[-1] < times[0]


class TestFig15NodeCountCrossover:
    def test_crossover_between_4_and_5_nodes(self, swgg):
        """Few cores: 4 nodes beat 5 (more compute cores left after
        scheduling overhead). Many cores: 5 nodes win (less per-node
        contention). The paper reports this at 20 vs 40 cores."""
        t4 = {y: r.makespan for y, r in experiment_series(swgg, 4, [20, 40], **PART)}
        t5 = {y: r.makespan for y, r in experiment_series(swgg, 5, [20, 40], **PART)}
        assert t4[20] < t5[20], "4 nodes should win at 20 cores"
        assert t5[40] < t4[40], "5 nodes should win at 40 cores"

    def test_crossover_detectable_in_series(self, swgg):
        ys = [20, 25, 30, 35, 40]
        s4 = Series.from_points("4 nodes", [(y, r.makespan) for y, r in
                                            experiment_series(swgg, 4, ys, **PART)])
        s5 = Series.from_points("5 nodes", [(y, r.makespan) for y, r in
                                            experiment_series(swgg, 5, ys, **PART)])
        assert crossover_points(s4, s5), "series should cross between 20 and 40 cores"

    def test_nussinov_same_direction(self, nussinov):
        t4 = {y: r.makespan for y, r in experiment_series(nussinov, 4, [20, 40], **PART)}
        t5 = {y: r.makespan for y, r in experiment_series(nussinov, 5, [20, 40], **PART)}
        assert t4[20] < t5[20]
        assert t5[40] < t4[40]


class TestFig16Speedup:
    def test_speedup_magnitudes(self, swgg, nussinov):
        """Paper: ~30x (SWGG) and ~20x (Nussinov) at 50 cores. Our
        simulated substrate reproduces the ordering and the order of
        magnitude; exact constants depend on testbed specifics."""
        cfg = RunConfig.experiment(5, 50, **PART)
        sw_speed = simulated_serial_makespan(swgg, cfg) / run_simulated(swgg, cfg)[1].makespan
        nu_speed = (
            simulated_serial_makespan(nussinov, cfg) / run_simulated(nussinov, cfg)[1].makespan
        )
        assert 15 <= sw_speed <= 40
        assert 10 <= nu_speed <= 35
        assert sw_speed > nu_speed  # SWGG scales better, as in the paper

    def test_minimum_deployment_is_4_cores(self):
        """The paper notes EasyHPS needs >= 4 cores (master scheduler +
        slave scheduler + compute)."""
        from repro.utils.errors import ConfigError

        with pytest.raises(ConfigError):
            RunConfig.experiment(2, 3)
        RunConfig.experiment(2, 4)  # the paper's smallest configuration


class TestFig17BCWRatio:
    def test_ratio_at_least_one_and_sometimes_above(self, swgg):
        ratios = []
        for y in [8, 9, 10, 12, 14]:
            dyn = RunConfig.experiment(3, y, **PART)
            bcw = RunConfig.experiment(3, y, scheduler="bcw", thread_scheduler="bcw", **PART)
            ratios.append(run_simulated(swgg, bcw)[1].makespan / run_simulated(swgg, dyn)[1].makespan)
        assert all(r >= 0.999 for r in ratios), ratios
        assert max(ratios) > 1.05, f"BCW should lose somewhere: {ratios}"

    def test_nussinov_ratio_above_one(self, nussinov):
        dyn = RunConfig.experiment(5, 33, **PART)
        bcw = RunConfig.experiment(5, 33, scheduler="bcw", thread_scheduler="bcw", **PART)
        ratio = run_simulated(nussinov, bcw)[1].makespan / run_simulated(nussinov, dyn)[1].makespan
        assert ratio > 1.02

    def test_dynamic_has_zero_idle_while_ready(self, swgg):
        """The paper's claim verbatim: the fatal BCW situation (computable
        nodes + idle workers) never happens under the dynamic pool."""
        _, rep = run_simulated(swgg, RunConfig.experiment(4, 22, **PART))
        assert rep.idle_while_ready == 0.0
        _, rep_bcw = run_simulated(
            swgg, RunConfig.experiment(4, 22, scheduler="bcw", **PART)
        )
        assert rep_bcw.idle_while_ready > 0.0
