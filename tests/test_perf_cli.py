"""End-to-end tests for ``repro perf``: trace profiling and the gate."""

import json

import pytest

from repro.analysis import trajectory
from repro.cli import EXIT_FAULT_EXHAUSTED, main


def _measured(scale: float = 1.0, bytes_extra: int = 0) -> dict:
    """A synthetic four-backend measurement, scalable for regression tests."""
    out = {}
    for backend, makespan in (
        ("serial", 1.0),
        ("threads", 0.6),
        ("processes", 0.8),
        ("simulated", 0.02),
    ):
        deterministic = backend in trajectory.DETERMINISTIC
        out[backend] = {
            "wall_time_s": makespan * scale,
            "makespan_s": makespan * (scale if backend != "serial" else 1.0),
            "messages": 100,
            "bytes_to_slaves": (50_000 + bytes_extra) if deterministic else 50_000,
            "bytes_to_master": 20_000,
        }
    return out


@pytest.fixture()
def baseline(tmp_path):
    path = tmp_path / "BENCH_BASELINE.json"
    trajectory.append_entry(str(path), label="base", measured=_measured())
    return path


class TestPerfTraceReports:
    def test_simulated_trace_report(self, tmp_path, capsys):
        trace = tmp_path / "sim.json"
        assert main(["simulate", "--algo", "edit-distance", "--size", "96",
                     "--nodes", "2", "--cores", "4", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["perf", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "sched efficiency" in out
        assert "time attribution" in out
        assert "what-if" in out
        # Workload meta survived the round trip into the report title.
        assert "edit-distance" in out

    def test_threads_trace_report(self, tmp_path, capsys):
        trace = tmp_path / "thr.json"
        assert main(["run", "--algo", "edit-distance", "--size", "64",
                     "--backend", "threads", "--nodes", "2",
                     "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["perf", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "time attribution" in out

    def test_multiple_traces_one_invocation(self, tmp_path, capsys):
        traces = []
        for i, backend in enumerate(("serial", "simulated")):
            trace = tmp_path / f"t{i}.json"
            verb = (["simulate", "--cores", "4"] if backend == "simulated"
                    else ["run", "--backend", backend])
            assert main(verb + ["--algo", "lcs", "--size", "48", "--nodes", "2",
                                "--trace-out", str(trace)]) == 0
            traces.append(str(trace))
        capsys.readouterr()
        assert main(["perf"] + traces) == 0
        out = capsys.readouterr().out
        assert out.count("time attribution") == 2

    def test_usage_error_without_inputs(self):
        with pytest.raises(SystemExit, match="nothing to do"):
            main(["perf"])

    def test_unreadable_trace_is_a_clean_error(self, tmp_path):
        bad = tmp_path / "nope.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="cannot read trace"):
            main(["perf", str(bad)])


class TestPerfGate:
    def test_clean_measurement_passes(self, baseline, capsys, monkeypatch):
        monkeypatch.setattr(trajectory, "measure", lambda: _measured())
        assert main(["perf", "--against", str(baseline), "--check"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_byte_regression_exits_3(self, baseline, capsys, monkeypatch):
        monkeypatch.setattr(trajectory, "measure", lambda: _measured(bytes_extra=1))
        rc = main(["perf", "--against", str(baseline), "--check"])
        assert rc == EXIT_FAULT_EXHAUSTED
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "FAIL" in out

    def test_makespan_regression_exits_3(self, baseline, capsys, monkeypatch):
        monkeypatch.setattr(trajectory, "measure", lambda: _measured(scale=3.0))
        rc = main(["perf", "--against", str(baseline), "--check"])
        assert rc == EXIT_FAULT_EXHAUSTED
        assert "REGRESSION" in capsys.readouterr().out

    def test_regression_without_check_reports_but_exits_0(
        self, baseline, capsys, monkeypatch
    ):
        monkeypatch.setattr(trajectory, "measure", lambda: _measured(scale=3.0))
        assert main(["perf", "--against", str(baseline)]) == 0
        assert "FAIL" in capsys.readouterr().out

    def test_loosened_tolerance_passes(self, baseline, capsys, monkeypatch):
        monkeypatch.setattr(trajectory, "measure", lambda: _measured(scale=3.0))
        assert main(["perf", "--against", str(baseline), "--check",
                     "--max-makespan-regress", "5.0"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_write_appends_entry(self, baseline, capsys, monkeypatch):
        monkeypatch.setattr(trajectory, "measure", lambda: _measured())
        assert main(["perf", "--against", str(baseline), "--check",
                     "--write", "--label", "next"]) == 0
        doc = json.loads(baseline.read_text())
        assert [e["label"] for e in doc["entries"]] == ["base", "next"]
        assert "recorded entry 'next'" in capsys.readouterr().out

    def test_empty_trajectory_is_a_setup_error(self, tmp_path, monkeypatch):
        monkeypatch.setattr(trajectory, "measure", lambda: _measured())
        with pytest.raises(SystemExit, match="no baseline entries"):
            main(["perf", "--against", str(tmp_path / "missing.json"), "--check"])
