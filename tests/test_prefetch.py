"""Tests for the transfer/compute overlap (prefetch) extension."""

import pytest

from repro import RunConfig
from repro.algorithms import SmithWatermanGG
from repro.backends.simulated import run_simulated
from repro.cluster.faults import FaultPlan, FaultRule


@pytest.fixture(scope="module")
def problem():
    return SmithWatermanGG.random(3000, seed=1)


def run(problem, **kw):
    base = dict(process_partition=200, thread_partition=10)
    base.update(kw)
    cfg = RunConfig.experiment(4, 16, **base)
    return run_simulated(problem, cfg)[1]


class TestPrefetch:
    def test_never_slower(self, problem):
        plain = run(problem)
        pf = run(problem, prefetch=True)
        assert pf.makespan <= plain.makespan + 1e-9

    def test_helps_when_transfers_matter(self, problem):
        plain = run(problem)
        pf = run(problem, prefetch=True)
        # SWGG ships big prefixes; one-deep overlap must hide some of it.
        assert pf.makespan < plain.makespan * 0.99

    def test_all_tasks_still_execute_once(self, problem):
        rep = run(problem, prefetch=True)
        assert rep.n_tasks == 15 * 15
        assert sum(rep.tasks_per_worker.values()) == rep.n_tasks
        assert rep.faults_recovered == 0

    def test_deterministic(self, problem):
        a = run(problem, prefetch=True).makespan
        b = run(problem, prefetch=True).makespan
        assert a == b

    def test_trace_still_consistent(self, problem):
        rep = run(problem, prefetch=True, trace=True)
        assert len(rep.trace) == rep.n_tasks
        by_node = {}
        for e in rep.trace:
            by_node.setdefault(e.node, []).append((e.compute_start, e.compute_end))
        # Computes on one node stay serialized even with prefetch;
        # only the transfers overlap.
        for intervals in by_node.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2 + 1e-12

    def test_survives_faults(self, problem):
        plan = FaultPlan([FaultRule("crash", (0, 0), 0), FaultRule("hang", (1, 1), 0)])
        rep = run(problem, prefetch=True, fault_plan=plan, task_timeout=2.0)
        assert rep.faults_recovered >= 2
        assert rep.n_tasks == 15 * 15

    def test_prefetched_task_cancelled_by_timeout_is_not_lost(self, problem):
        """A task that times out while sitting prefetched on a stuck node
        must still complete elsewhere (via redistribution)."""
        # Hang the node long enough that its prefetched follow-up also
        # times out and gets redistributed.
        plan = FaultPlan([FaultRule("hang", (0, 0), 0)])
        rep = run(problem, prefetch=True, fault_plan=plan, task_timeout=0.5)
        assert rep.n_tasks == 15 * 15
        assert rep.faults_recovered >= 1
