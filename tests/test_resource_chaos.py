"""Resource-exhaustion chaos campaigns and real fd-exhaustion behaviour.

The campaign invariant under injected I/O faults is the same hard
guarantee as every other chaos tier: each run either matches the serial
oracle bit-for-bit or aborts cleanly with an attributed
``ResourceExhausted`` — never a hang, never a torn journal, never a
leaked ``/dev/shm`` segment.  The last test drops ``RLIMIT_NOFILE`` in a
subprocess to exercise a *real* resource wall, not an injected one.
"""

import json
import subprocess
import sys
import textwrap

import pytest

from repro.chaos import CampaignSpec, run_campaign
from repro.utils.errors import ChaosError


def resource_spec(**over):
    base = dict(
        backends=("simulated",),
        seeds=4,
        algo="edit-distance",
        size=24,
        resources=True,
        message_p=0.0,
        worker_p_die=0.0,
        worker_p_slow=0.0,
        task_fault_p=0.0,
        io_p_write=0.1,
        io_p_fsync=0.05,
        io_p_shm=0.2,
        run_timeout=60.0,
    )
    base.update(over)
    return CampaignSpec(**base)


class TestResourceCampaign:
    def test_simulated_campaign_holds_invariant(self):
        result = run_campaign(resource_spec())
        assert result.ok, result.summary()
        statuses = {o.status for o in result.outcomes}
        assert statuses <= {"ok", "aborted"}

    def test_threads_campaign_holds_invariant(self):
        result = run_campaign(resource_spec(backends=("threads",), seeds=3))
        assert result.ok, result.summary()

    def test_aborts_are_attributed(self):
        # High persistent-ish pressure: some seed hits the abort arm of
        # the degrade cycle and the abort detail must name the resource.
        result = run_campaign(
            resource_spec(seeds=6, io_p_write=0.3, io_p_fsync=0.1)
        )
        assert result.ok, result.summary()
        aborted = [o for o in result.outcomes if o.status == "aborted"]
        assert aborted, "expected at least one clean abort at this pressure"
        assert any("resource-exhausted" in o.detail for o in aborted)

    def test_resources_excludes_kill_master(self):
        with pytest.raises(ChaosError):
            resource_spec(kill_master_at=0.5)

    def test_campaign_is_deterministic_per_seed(self):
        a = run_campaign(resource_spec(seeds=2))
        b = run_campaign(resource_spec(seeds=2))
        assert [(o.seed, o.status) for o in a.outcomes] == [
            (o.seed, o.status) for o in b.outcomes
        ]


FD_EXHAUSTION_SCRIPT = textwrap.dedent("""
    import json, resource, sys
    # Drop the fd ceiling so journal I/O hits a real EMFILE wall, then
    # burn every spare descriptor.
    resource.setrlimit(resource.RLIMIT_NOFILE, (32, 32))
    import numpy as np
    from repro import RunConfig
    from repro.algorithms import EditDistance
    from repro.durable import CommitJournal, JournalGuard, scan_journal
    from repro.comm.shm import leaked_segments
    from repro.utils.errors import ResourceExhausted

    path = sys.argv[1]
    problem = EditDistance.random(16, 16, seed=0)
    journal = CommitJournal.create(path, fsync=False)
    journal.begin(problem, RunConfig(backend="serial"))
    guard = JournalGuard(journal, mode="abort", retries=1, job_id="fd-job")
    guard.commit((0, 0), 0, {"cell": np.zeros((2, 2))})

    hogs = []
    try:
        while True:
            hogs.append(open("/dev/null", "rb"))
    except OSError:
        pass

    # Force the next append through a reopen (the repair path), which
    # must fail with EMFILE and surface as an attributed abort.
    guard.journal._fh.close()
    guard.journal._fh = None
    outcome = {}
    try:
        guard.commit((0, 1), 0, {"cell": np.zeros((2, 2))})
        outcome["status"] = "no-error"
    except ResourceExhausted as exc:
        outcome["status"] = "resource-exhausted"
        outcome["job_id"] = exc.job_id
        outcome["reason"] = exc.reason
    except BaseException as exc:  # noqa: BLE001 - report, don't mask
        outcome["status"] = f"unexpected:{type(exc).__name__}"

    for fh in hogs:
        fh.close()
    guard.close()
    scan = scan_journal(path)
    outcome["committed"] = sorted(map(list, scan.committed))
    outcome["truncated"] = scan.truncated
    outcome["shm_leaks"] = leaked_segments("")
    print(json.dumps(outcome))
""")


class TestRealFdExhaustion:
    def test_journal_under_rlimit_nofile_aborts_cleanly(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-c", FD_EXHAUSTION_SCRIPT, str(tmp_path / "j")],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        outcome = json.loads(proc.stdout.strip().splitlines()[-1])
        assert outcome["status"] == "resource-exhausted", outcome
        assert outcome["job_id"] == "fd-job"
        assert outcome["reason"].startswith("resource-exhausted:fd")
        # The journal survived: a clean prefix holding the one commit
        # that landed before the wall, no torn tail, no shm leaks.
        assert outcome["committed"] == [[0, 0]]
        assert not outcome["truncated"]
        assert outcome["shm_leaks"] == []
