"""Tests for the EXPERIMENTS.md generation pipeline (benchmarks/run_all.py)."""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _repo_on_path():
    sys.path.insert(0, str(REPO_ROOT))
    yield
    sys.path.remove(str(REPO_ROOT))


@pytest.mark.slow
def test_run_all_writes_complete_record(tmp_path, capsys):
    from benchmarks.run_all import main

    out = tmp_path / "EXPERIMENTS.md"
    main(["--seq-len", "800", "--out", str(out)])
    text = out.read_text()
    # Every table and figure of the paper's evaluation is present...
    for marker in ("Table I", "Fig 13", "Fig 14", "Fig 15", "Fig 16", "Fig 17"):
        assert marker in text, marker
    # ...plus the claim table and the extension studies.
    assert "Paper's claim" in text
    assert "Ablations" in text
    assert "Extensions" in text
    assert "seq_len = 800" in text
    # The generated series contain actual numbers for each node count.
    assert "swgg X=2" in text
    assert "nussinov X=5" in text
    assert "BCW/EasyHPS" in text


def test_series_table_helper():
    from benchmarks.common import series_table
    from repro.analysis.figures import Series

    a = Series("a", (1, 2), (10.0, 20.0))
    b = Series("b", (2, 3), (5.0, 6.0))
    out = series_table("demo", [a, b])
    assert "## demo" in out
    assert "nan" in out  # non-overlapping x values render as nan


def test_paper_partition_constants():
    from benchmarks.common import PAPER_PARTITION, PAPER_SEQ_LEN

    assert PAPER_SEQ_LEN == 10000
    assert PAPER_PARTITION == {"process_partition": 200, "thread_partition": 10}
