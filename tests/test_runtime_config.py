"""Unit tests for RunConfig and the Experiment_X_Y accounting."""

import pytest

from repro.algorithms import EditDistance
from repro.runtime.config import RunConfig
from repro.utils.errors import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        cfg = RunConfig()
        assert cfg.n_slaves == 1

    def test_bad_backend(self):
        with pytest.raises(ConfigError):
            RunConfig(backend="mpi")

    def test_bad_scheduler(self):
        with pytest.raises(ConfigError):
            RunConfig(scheduler="lottery")
        with pytest.raises(ConfigError):
            RunConfig(thread_scheduler="lottery")

    def test_nodes_minimum(self):
        with pytest.raises(ConfigError):
            RunConfig(nodes=1, backend="threads")
        RunConfig(nodes=1, backend="serial")  # serial runs need no slave

    def test_positive_scalars(self):
        with pytest.raises(ConfigError):
            RunConfig(threads_per_node=0)
        with pytest.raises(ConfigError):
            RunConfig(task_timeout=0)
        with pytest.raises(ConfigError):
            RunConfig(max_retries=-1)


class TestPartitionsResolution:
    def test_explicit_sizes(self):
        cfg = RunConfig(process_partition=(20, 10), thread_partition=5)
        proc, thread = cfg.partitions_for(EditDistance("ACGT" * 20, "ACGT" * 20))
        assert proc == (20, 10)
        assert thread == (5, 5)

    def test_problem_defaults_used(self):
        ed = EditDistance("A" * 80, "C" * 80)
        proc, thread = RunConfig().partitions_for(ed)
        assert proc[0] >= 1 and thread[0] >= 1
        assert thread[0] <= proc[0]


class TestExperimentFactory:
    def test_paper_accounting(self):
        cfg = RunConfig.experiment(4, 22)
        spec = cfg.cluster_spec()
        assert spec.total_nodes == 4
        assert spec.total_cores == 22
        assert cfg.backend == "simulated"

    def test_uneven_threads(self):
        cfg = RunConfig.experiment(3, 10)
        assert [n.threads for n in cfg.cluster_spec().compute_nodes] == [3, 2]
        assert cfg.threads_per_node == 3

    def test_overrides(self):
        cfg = RunConfig.experiment(3, 11, scheduler="bcw", process_partition=50)
        assert cfg.scheduler == "bcw"
        assert cfg.process_partition == 50

    def test_infeasible_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig.experiment(4, 9)

    def test_derived_cluster_without_experiment(self):
        cfg = RunConfig(nodes=4, threads_per_node=3)
        spec = cfg.cluster_spec()
        assert spec.n_compute_nodes == 3
        assert all(n.threads == 3 for n in spec.compute_nodes)
