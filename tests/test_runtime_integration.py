"""Integration tests: the real master/slave runtime end to end.

Every bundled algorithm runs through the threads backend and must produce
results identical to its serial reference; scheduling policies, worker
counts, and partition shapes are varied to exercise the protocol broadly.
"""

import numpy as np
import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import (
    EditDistance,
    LongestCommonSubsequence,
    MatrixChainOrder,
    Nussinov,
    SmithWatermanGG,
)


def cfg(**kw):
    base = dict(
        nodes=3,
        threads_per_node=2,
        backend="threads",
        process_partition=16,
        thread_partition=4,
        task_timeout=30.0,
        poll_interval=0.005,
    )
    base.update(kw)
    return RunConfig(**base)


class TestThreadsBackendCorrectness:
    def test_edit_distance(self, edit_distance_small):
        run = EasyHPS(cfg()).run(edit_distance_small)
        assert run.value.distance == edit_distance_small.reference()
        assert run.report.n_tasks > 1
        assert run.report.backend == "threads"

    def test_lcs(self, lcs_small):
        run = EasyHPS(cfg(process_partition=12)).run(lcs_small)
        assert run.value.length == lcs_small.reference()

    def test_swgg_full_matrix(self, swgg_small):
        run = EasyHPS(cfg(process_partition=8, thread_partition=3)).run(swgg_small)
        assert np.allclose(run.state["H"], swgg_small.reference_matrix())

    def test_nussinov(self, nussinov_small):
        run = EasyHPS(cfg(process_partition=10, thread_partition=5)).run(nussinov_small)
        assert run.value.score == nussinov_small.reference()

    def test_matrix_chain(self, matrix_chain_small):
        run = EasyHPS(cfg(process_partition=8, thread_partition=4)).run(matrix_chain_small)
        assert np.isclose(run.value.cost, matrix_chain_small.reference())

    @pytest.mark.parametrize("n_nodes", [2, 3, 5])
    def test_worker_counts(self, n_nodes, edit_distance_small):
        run = EasyHPS(cfg(nodes=n_nodes)).run(edit_distance_small)
        assert run.value.distance == edit_distance_small.reference()
        assert sum(run.report.tasks_per_worker.values()) == run.report.n_tasks

    def test_single_block_degenerate(self):
        ed = EditDistance("ACGT", "TGCA")
        run = EasyHPS(cfg(process_partition=64, thread_partition=64)).run(ed)
        assert run.value.distance == ed.reference()
        assert run.report.n_tasks == 1

    def test_one_cell_blocks_degenerate(self):
        ed = EditDistance("ACG", "TG")
        run = EasyHPS(cfg(process_partition=1, thread_partition=1)).run(ed)
        assert run.value.distance == ed.reference()
        assert run.report.n_tasks == 6


class TestSchedulingPolicies:
    @pytest.mark.parametrize("scheduler", ["dynamic", "bcw", "cw"])
    def test_node_level_policies_correct(self, scheduler, lcs_small):
        run = EasyHPS(cfg(scheduler=scheduler)).run(lcs_small)
        assert run.value.length == lcs_small.reference()

    @pytest.mark.parametrize("thread_scheduler", ["dynamic", "bcw"])
    def test_thread_level_policies_correct(self, thread_scheduler, nussinov_small):
        run = EasyHPS(cfg(thread_scheduler=thread_scheduler, process_partition=10,
                          thread_partition=3)).run(nussinov_small)
        assert run.value.score == nussinov_small.reference()

    def test_bcw_ownership_respected(self, edit_distance_small):
        run = EasyHPS(cfg(scheduler="bcw", nodes=3)).run(edit_distance_small)
        # 37x53 cells / 16 -> 3x4 block grid; columns deal 0,1,0,1 over 2
        # slaves: each slave owns 2 columns x 3 rows = 6 blocks.
        assert run.report.tasks_per_worker == {0: 6, 1: 6}


class TestReporting:
    def test_message_accounting(self, edit_distance_small):
        run = EasyHPS(cfg()).run(edit_distance_small)
        r = run.report
        # Protocol: per executed task one idle + one assign + one result,
        # plus one final idle + end per slave.
        assert r.messages >= 3 * r.n_tasks
        assert r.bytes_to_slaves > 0
        assert r.bytes_to_master > 0

    def test_subtask_accounting(self, edit_distance_small):
        run = EasyHPS(cfg()).run(edit_distance_small)
        part_cells = 37 * 53
        assert run.report.n_subtasks >= run.report.n_tasks
        assert run.report.total_flops == 3.0 * part_cells

    def test_summary_renders(self, edit_distance_small):
        run = EasyHPS(cfg()).run(edit_distance_small)
        text = run.report.summary()
        assert "edit-distance" in text
        assert "makespan" in text


class TestSerialBackend:
    def test_serial_matches_reference(self, nussinov_small):
        run = EasyHPS(RunConfig(nodes=1, backend="serial", process_partition=8,
                                thread_partition=4)).run(nussinov_small)
        assert run.value.score == nussinov_small.reference()
        assert run.report.nodes == 1

    def test_rejects_non_problem(self):
        from repro.utils.errors import ConfigError

        with pytest.raises(ConfigError):
            EasyHPS(RunConfig(backend="serial")).run("not a problem")


@pytest.mark.slow
class TestProcessesBackend:
    def test_edit_distance_across_processes(self, edit_distance_small):
        run = EasyHPS(cfg(backend="processes", nodes=3)).run(edit_distance_small)
        assert run.value.distance == edit_distance_small.reference()
        assert run.report.backend == "processes"

    def test_nussinov_across_processes(self, nussinov_small):
        run = EasyHPS(cfg(backend="processes", nodes=2, process_partition=10,
                          thread_partition=5)).run(nussinov_small)
        assert run.value.score == nussinov_small.reference()

    def test_swgg_across_processes_with_bcw(self, swgg_small):
        run = EasyHPS(cfg(backend="processes", scheduler="bcw",
                          process_partition=8, thread_partition=4)).run(swgg_small)
        assert np.allclose(run.state["H"], swgg_small.reference_matrix())

    def test_fault_recovery_across_processes(self, edit_distance_small):
        """A slave OS process that drops a task must be recovered by the
        master's overtime redistribution — the closest functional analogue
        of a killed MPI rank this substrate can express."""
        from repro.cluster.faults import FaultPlan, FaultRule

        plan = FaultPlan([FaultRule("crash", (0, 0), 0)])
        run = EasyHPS(cfg(backend="processes", nodes=3, threads_per_node=1,
                          task_timeout=0.5, fault_plan=plan)).run(edit_distance_small)
        assert run.value.distance == edit_distance_small.reference()
        assert run.report.faults_recovered >= 1
