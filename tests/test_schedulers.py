"""Unit tests for the scheduling policies (dynamic, BCW, CW)."""

import pytest

from repro.schedulers.policy import (
    BlockCyclicWavefrontPolicy,
    ColumnWavefrontPolicy,
    DynamicPolicy,
    make_policy,
)
from repro.utils.errors import ConfigError, SchedulerError


class TestDynamic:
    def test_everything_eligible(self):
        p = DynamicPolicy(3)
        for w in range(3):
            for t in [(0, 0), (5, 9), (2, 1)]:
                assert p.eligible(w, t)
                assert p.owner(t) is None

    def test_select_takes_first(self):
        p = DynamicPolicy(2)
        assert p.select(0, [(1, 1), (0, 2)]) == (1, 1)
        assert p.select(0, []) is None

    def test_worker_range_checked(self):
        p = DynamicPolicy(2)
        with pytest.raises(SchedulerError):
            p.eligible(2, (0, 0))


class TestBCW:
    def test_cyclic_ownership(self):
        p = BlockCyclicWavefrontPolicy(3)
        assert p.owner((0, 0)) == 0
        assert p.owner((5, 1)) == 1
        assert p.owner((9, 2)) == 2
        assert p.owner((0, 3)) == 0

    def test_block_cols_grouping(self):
        p = BlockCyclicWavefrontPolicy(2, block_cols=2)
        assert [p.owner((0, j)) for j in range(8)] == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_select_respects_ownership(self):
        p = BlockCyclicWavefrontPolicy(2)
        ready = [(0, 0), (0, 1), (0, 2)]
        assert p.select(0, ready) == (0, 0)
        assert p.select(1, ready) == (0, 1)

    def test_worker_with_nothing_eligible_idles(self):
        p = BlockCyclicWavefrontPolicy(3)
        assert p.select(2, [(0, 0), (0, 1)]) is None  # owns column 2 only

    def test_invalid_block_cols(self):
        with pytest.raises(ConfigError):
            BlockCyclicWavefrontPolicy(2, block_cols=0)


class TestCW:
    def test_contiguous_bands(self):
        p = ColumnWavefrontPolicy(2, n_columns=8)
        assert [p.owner((0, j)) for j in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_uneven_bands_clip_to_last_worker(self):
        p = ColumnWavefrontPolicy(3, n_columns=7)  # band = 3
        assert [p.owner((0, j)) for j in range(7)] == [0, 0, 0, 1, 1, 1, 2]

    def test_more_workers_than_columns(self):
        p = ColumnWavefrontPolicy(5, n_columns=3)
        owners = {p.owner((0, j)) for j in range(3)}
        assert owners <= {0, 1, 2, 3, 4}

    def test_column_out_of_range(self):
        p = ColumnWavefrontPolicy(2, n_columns=4)
        with pytest.raises(SchedulerError):
            p.owner((0, 4))


class TestFactory:
    def test_make_each(self):
        assert isinstance(make_policy("dynamic", 2, 10), DynamicPolicy)
        assert isinstance(make_policy("bcw", 2, 10), BlockCyclicWavefrontPolicy)
        assert isinstance(make_policy("cw", 2, 10), ColumnWavefrontPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("random", 2, 10)

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("dynamic", 0, 10)

    def test_cw_is_bcw_with_band_grouping(self):
        """The paper's note: CW == BCW with block_col = data_col / workers."""
        n_cols, workers = 12, 3
        cw = ColumnWavefrontPolicy(workers, n_columns=n_cols)
        bcw = BlockCyclicWavefrontPolicy(workers, block_cols=n_cols // workers)
        for j in range(n_cols):
            assert cw.owner((0, j)) == bcw.owner((0, j))
