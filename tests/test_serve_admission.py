"""Admission control: bounded queue, structured shedding, cancellation."""

import pytest

from repro.serve.admission import (
    SHED_DRAINING,
    SHED_QUEUE_FULL,
    AdmissionController,
)
from repro.serve.job import JobRecord, JobSpec
from repro.serve.policy import make_ordering_policy
from repro.utils.errors import ConfigError


def _record(job_id, tenant="t"):
    return JobRecord(job_id, JobSpec(tenant=tenant))


class TestBoundedQueue:
    def test_accepts_until_cap_then_sheds_with_reason(self):
        ctrl = AdmissionController(2)
        assert ctrl.admit(_record("a")).accepted
        assert ctrl.admit(_record("b")).accepted
        decision = ctrl.admit(_record("c", tenant="late"))
        assert not decision.accepted
        assert decision.reason.startswith(SHED_QUEUE_FULL)
        assert decision.job_id is None
        assert decision.queue_depth == 2
        assert ctrl.shed_by_tenant == {"late": 1}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError):
            AdmissionController(0)

    def test_draining_sheds_everything(self):
        ctrl = AdmissionController(4)
        ctrl.admit(_record("a"))
        leftover = ctrl.drain()
        assert [r.job_id for r in leftover] == ["a"]
        decision = ctrl.admit(_record("b"))
        assert not decision.accepted
        assert decision.reason.startswith(SHED_DRAINING)
        assert ctrl.depth == 0


class TestQueueOps:
    def test_pop_next_respects_policy(self):
        ctrl = AdmissionController(8)
        for job_id, cost in (("a", 30.0), ("b", 5.0), ("c", 10.0)):
            rec = _record(job_id)
            rec.est_cost = cost
            ctrl.admit(rec)
        sjf = make_ordering_policy("sjf")
        popped = ctrl.pop_next(sjf, now=0.0)
        assert popped is not None and popped.job_id == "b"
        assert ctrl.depth == 2

    def test_pop_next_launchable_filter(self):
        ctrl = AdmissionController(8)
        ctrl.admit(_record("wide"))
        ctrl.admit(_record("narrow"))
        fifo = make_ordering_policy("fifo")
        popped = ctrl.pop_next(fifo, 0.0, launchable=lambda r: r.job_id == "narrow")
        assert popped is not None and popped.job_id == "narrow"
        assert ctrl.pop_next(fifo, 0.0, launchable=lambda r: False) is None
        assert ctrl.depth == 1

    def test_cancel_removes_only_queued(self):
        ctrl = AdmissionController(4)
        ctrl.admit(_record("a"))
        assert ctrl.cancel("a") is not None
        assert ctrl.cancel("a") is None
        assert ctrl.depth == 0

    def test_requeue_goes_to_head(self):
        ctrl = AdmissionController(4)
        ctrl.admit(_record("a"))
        ctrl.admit(_record("b"))
        fifo = make_ordering_policy("fifo")
        popped = ctrl.pop_next(fifo, 0.0)
        assert popped.job_id == "a"
        ctrl.requeue(popped)
        assert ctrl.pop_next(fifo, 0.0).job_id == "a"

    def test_restore_bypasses_capacity(self):
        ctrl = AdmissionController(1)
        ctrl.admit(_record("a"))
        ctrl.restore(_record("recovered-1"))
        ctrl.restore(_record("recovered-2"))
        assert ctrl.depth == 3

    def test_wait_for_work_wakes_on_admit(self):
        ctrl = AdmissionController(4)
        assert not ctrl.wait_for_work(0.01)
        ctrl.admit(_record("a"))
        assert ctrl.wait_for_work(0.01)
