"""The service-level chaos tier: multi-tenant campaigns with worker
kills, one sabotaged tenant, and a mid-campaign daemon kill + resume."""

import pytest

from repro.chaos import ServeCampaignSpec, run_serve_campaign
from repro.utils.errors import ChaosError


class TestSpecValidation:
    def test_bad_n_jobs_rejected(self):
        with pytest.raises(ChaosError):
            run_serve_campaign(ServeCampaignSpec(n_jobs=0))

    def test_sabotage_tenant_must_be_in_tenants(self):
        with pytest.raises(ChaosError):
            run_serve_campaign(
                ServeCampaignSpec(sabotage_tenant="ghost", tenants=("a", "b"))
            )


class TestCalmCampaign:
    def test_no_faults_no_kill_all_done(self, tmp_path):
        spec = ServeCampaignSpec(
            n_jobs=4, seed=1, workers=3, size_min=16, size_max=20,
            nodes=2, worker_p_die=0.0, sabotage_tenant=None,
            kill_daemon_at=None, tenants=("acme", "globex"),
            task_timeout=5.0, job_timeout=30.0,
        )
        result = run_serve_campaign(spec, artifact_dir=str(tmp_path))
        assert result.ok, result.summary()
        assert result.accepted == 4
        assert result.counts() == {"done": 4}
        assert result.drain_clean
        assert result.fleet_leaked == 0
        assert result.summary().endswith("VERDICT: OK")


class TestFullInvariant:
    def test_kill_resume_sabotage_campaign(self, tmp_path):
        """The acceptance-criteria shape, scaled for CI: seeded worker
        kills on every job, one sabotaged tenant, daemon killed halfway
        through the submissions and resumed from the WAL. Every job must
        end oracle-identical or in a clean attributed abort, with no
        cross-tenant contamination, a clean drain, and no leaked
        threads."""
        spec = ServeCampaignSpec(
            n_jobs=10, seed=3, workers=3, size_min=16, size_max=28,
            nodes=2, worker_p_die=0.1,
            tenants=("acme", "globex", "mallory"),
            sabotage_tenant="mallory",
            kill_daemon_at=0.5, max_retries=4,
            task_timeout=2.0, job_timeout=45.0,
        )
        result = run_serve_campaign(spec, artifact_dir=str(tmp_path))
        assert result.ok, result.summary()
        assert result.submitted == 10
        # Every verdict is terminal-and-acceptable; nothing hung.
        assert len(result.verdicts) == result.accepted
        for verdict in result.verdicts:
            assert verdict.status in ("done", "aborted", "cancelled")
        assert result.drain_clean
        assert result.fleet_leaked == 0
