"""The serve daemon end to end: multi-tenant correctness, job-level
fault isolation, deadlines, cancellation, kill -9 + resume, drain."""

import numpy as np
import pytest

from repro import EasyHPS, RunConfig
from repro.serve import JobSpec, ServeDaemon, build_problem
from repro.serve.admission import SHED_INVALID


def _daemon(tmp_path=None, **kwargs):
    kwargs.setdefault("workers", 3)
    kwargs.setdefault("queue_cap", 32)
    kwargs.setdefault("task_timeout", 5.0)
    kwargs.setdefault("keep_states", True)
    if tmp_path is not None:
        kwargs.setdefault("wal_path", str(tmp_path / "serve.srvj"))
        kwargs.setdefault("job_journal_dir", str(tmp_path / "jobs"))
    return ServeDaemon(**kwargs)


def _oracle(spec):
    problem = build_problem(spec)
    return EasyHPS(RunConfig(backend="serial")).run(problem).state


def _assert_oracle_identical(record, spec):
    oracle = _oracle(spec)
    assert record.state is not None
    for key in oracle:
        assert np.array_equal(oracle[key], record.state[key])


class TestMultiTenant:
    def test_concurrent_jobs_all_oracle_identical(self):
        daemon = _daemon()
        daemon.start()
        try:
            specs = [
                JobSpec(tenant=f"t{i % 3}", algo="lcs", size=24, seed=i, nodes=2)
                for i in range(6)
            ]
            ids = []
            for spec in specs:
                decision = daemon.submit(spec)
                assert decision.accepted
                ids.append(decision.job_id)
            assert daemon.wait_idle(60.0)
            for job_id, spec in zip(ids, specs):
                record = daemon.get(job_id)
                assert record.status == "done", record.detail
                _assert_oracle_identical(record, spec)
            counters = daemon.tenant_stats()["counters"]
            assert counters["serve.jobs_submitted{tenant=t0}"] == 2
            assert counters["serve.jobs_done{tenant=t1}"] == 2
        finally:
            assert daemon.drain(20.0)

    def test_overload_sheds_structured_never_hangs(self):
        daemon = _daemon(workers=1, queue_cap=2)
        daemon.start()
        try:
            decisions = [
                daemon.submit(JobSpec(algo="lcs", size=24, seed=i, nodes=2))
                for i in range(10)
            ]
            shed = [d for d in decisions if not d.accepted]
            assert shed, "queue cap 2 with 10 instant submissions must shed"
            for d in shed:
                assert d.reason and not d.accepted and d.job_id is None
            assert daemon.wait_idle(60.0)
        finally:
            daemon.drain(20.0)

    def test_invalid_spec_is_structured_rejection(self):
        daemon = _daemon()
        daemon.start()
        try:
            decision = daemon.submit_dict({"algo": "no-such-dp", "size": 16})
            assert not decision.accepted
            assert decision.reason.startswith(SHED_INVALID)
            decision = daemon.submit_dict({"algo": "lcs", "size": -3})
            assert not decision.accepted
            assert decision.reason.startswith(SHED_INVALID)
            decision = daemon.submit_dict({"frobnicate": True})
            assert not decision.accepted
            assert decision.reason.startswith(SHED_INVALID)
        finally:
            daemon.drain(5.0)


class TestFaultIsolation:
    def test_poisoned_tenant_aborts_alone(self):
        """One tenant's lying workers exhaust its retry budget; its abort
        is attributed to its job id and neighbors finish untouched."""
        daemon = _daemon()
        daemon.start()
        try:
            good = [
                JobSpec(tenant="good", algo="lcs", size=24, seed=i, nodes=2)
                for i in range(3)
            ]
            evil = JobSpec(
                tenant="evil", algo="lcs", size=24, seed=9, nodes=2,
                integrity="audit", max_retries=2,
                chaos={"worker_p_lie": 1.0, "seed": 5},
            )
            good_ids = [daemon.submit(spec).job_id for spec in good]
            evil_id = daemon.submit(evil).job_id
            assert daemon.wait_idle(90.0)
            evil_record = daemon.get(evil_id)
            assert evil_record.status == "aborted", evil_record.detail
            assert f"[job {evil_id}]" in evil_record.detail
            for job_id, spec in zip(good_ids, good):
                record = daemon.get(job_id)
                assert record.status == "done", record.detail
                _assert_oracle_identical(record, spec)
        finally:
            daemon.drain(20.0)

    def test_deadline_cancels_cleanly_and_attributed(self):
        daemon = _daemon(poll_interval=0.01)
        daemon.start()
        try:
            spec = JobSpec(algo="edit-distance", size=96, seed=0, nodes=2,
                           deadline=0.05)
            job_id = daemon.submit(spec).job_id
            assert daemon.wait_idle(60.0)
            record = daemon.get(job_id)
            assert record.status == "aborted"
            assert "deadline" in record.detail
            assert f"[job {job_id}]" in record.detail
        finally:
            daemon.drain(20.0)

    def test_cancel_queued_and_running(self):
        daemon = _daemon(workers=1)
        daemon.start()
        try:
            first = daemon.submit(
                JobSpec(algo="edit-distance", size=64, seed=1, nodes=2)
            ).job_id
            backlog = [
                daemon.submit(JobSpec(algo="lcs", size=24, seed=i, nodes=2)).job_id
                for i in range(2, 5)
            ]
            outcome = daemon.cancel(backlog[-1], reason="user asked")
            assert outcome == "cancelled"
            record = daemon.get(backlog[-1])
            assert record.status == "cancelled"
            assert "user asked" in record.detail
            daemon.cancel(first, reason="changed my mind")
            assert daemon.wait_idle(60.0)
            first_record = daemon.get(first)
            # Either the cancel landed mid-run (aborted) or the job beat
            # the cancel (done) — both clean, never a hang.
            assert first_record.status in ("aborted", "done", "cancelled")
            assert daemon.cancel("job-nope") == "unknown"
        finally:
            daemon.drain(20.0)


class TestKillResume:
    def test_kill_resume_completes_all_acknowledged_jobs(self, tmp_path):
        daemon = _daemon(tmp_path, workers=2)
        daemon.start()
        specs = {}
        for i in range(6):
            spec = JobSpec(tenant="a", algo="lcs", size=24, seed=i, nodes=2)
            decision = daemon.submit(spec)
            specs[decision.job_id] = spec
        daemon.wait_idle(0.2)  # let a couple of jobs start
        daemon.kill()

        resumed = _daemon(tmp_path, workers=2, resume=True)
        resumed.start()
        try:
            assert resumed.resumed_jobs > 0
            assert resumed.wait_idle(90.0)
            for job_id, spec in specs.items():
                record = resumed.get(job_id)
                assert record is not None, f"{job_id} lost across the kill"
                if record.state is not None:
                    assert record.status == "done", record.detail
                    _assert_oracle_identical(record, spec)
                else:
                    # Finished before the kill: history carried via WAL.
                    assert record.status == "done"
        finally:
            assert resumed.drain(20.0)

    def test_resume_on_missing_wal_starts_fresh(self, tmp_path):
        daemon = _daemon(tmp_path, resume=True)
        daemon.start()
        try:
            assert daemon.resumed_jobs == 0
            assert daemon.submit(
                JobSpec(algo="lcs", size=16, seed=0, nodes=2)
            ).accepted
            assert daemon.wait_idle(30.0)
        finally:
            daemon.drain(10.0)


class TestDrain:
    def test_drain_cancels_queued_finishes_running(self):
        daemon = _daemon(workers=1)
        daemon.start()
        running = daemon.submit(
            JobSpec(algo="edit-distance", size=48, seed=0, nodes=2)
        ).job_id
        queued = [
            daemon.submit(JobSpec(algo="lcs", size=24, seed=i, nodes=2)).job_id
            for i in range(1, 4)
        ]
        assert daemon.drain(60.0)
        record = daemon.get(running)
        assert record.status in ("done", "cancelled")
        drained = [daemon.get(j) for j in queued]
        cancelled = [r for r in drained if r.status == "cancelled"]
        assert cancelled, "drain must cancel still-queued jobs with a reason"
        for r in cancelled:
            assert "drained" in r.detail
        after = daemon.submit(JobSpec(algo="lcs", size=16, nodes=2))
        assert not after.accepted
        assert after.reason.startswith("draining")


class TestElasticGrowth:
    def test_idle_workers_attach_to_running_job(self):
        daemon = _daemon(workers=4, grow_running=True, poll_interval=0.01)
        daemon.start()
        try:
            spec = JobSpec(algo="edit-distance", size=72, seed=3, nodes=2)
            job_id = daemon.submit(spec).job_id
            assert daemon.wait_idle(60.0)
            record = daemon.get(job_id)
            assert record.status == "done", record.detail
            _assert_oracle_identical(record, spec)
            attached = daemon.metrics.snapshot()["counters"].get(
                "serve.workers_attached{tenant=default}", 0
            )
            assert attached >= 1, "no idle worker ever attached mid-run"
        finally:
            daemon.drain(20.0)


class TestIPC:
    def test_socket_round_trip(self, tmp_path):
        from repro.serve.ipc import (
            ServeServer,
            cancel_job,
            daemon_stats,
            list_jobs,
            request,
            submit_job,
        )

        daemon = _daemon()
        daemon.start()
        sock = str(tmp_path / "serve.sock")
        server = ServeServer(daemon, sock)
        server.start()
        try:
            assert request(sock, {"op": "ping"})["ok"]
            decision = submit_job(sock, {"algo": "lcs", "size": 24, "nodes": 2})
            assert decision["accepted"]
            assert daemon.wait_idle(30.0)
            jobs = list_jobs(sock)
            assert jobs and jobs[0]["status"] == "done"
            assert "queue_depth" in daemon_stats(sock)
            assert cancel_job(sock, "job-nope") == "unknown"
            bad = request(sock, {"op": "frobnicate"})
            assert not bad["ok"] and "unknown op" in bad["error"]
        finally:
            server.stop()
            daemon.drain(10.0)

    def test_dead_daemon_is_clean_error_not_hang(self, tmp_path):
        from repro.serve.ipc import request
        from repro.utils.errors import TransportError

        with pytest.raises(TransportError):
            request(str(tmp_path / "nobody.sock"), {"op": "ping"}, timeout=0.5)
