"""The shared worker fleet: isolation, reuse, and — the satellite — the
attach_worker/WorkerLeave churn hammer with multiple masters sharing one
fleet (the serve-daemon version of test_elastic_membership)."""

import threading

import numpy as np
import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance
from repro.comm.transport import channel_pair
from repro.runtime.master import MasterPart
from repro.runtime.slave import SlavePart
from repro.schedulers.policy import make_policy
from repro.serve.fleet import WorkerFleet
from repro.utils.errors import ConfigError, SchedulerError


class TestFleetBasics:
    def test_acquire_release_cycle(self):
        fleet = WorkerFleet(3)
        fleet.start()
        try:
            ids = fleet.acquire(2)
            assert ids is not None and len(ids) == 2
            assert fleet.idle_count == 1
            done = threading.Event()
            for worker_id in ids:
                fleet.assign(worker_id, done.wait, label="wait")
            assert fleet.idle_count == 1
            done.set()
            assert fleet.wait_idle(5.0)
            assert fleet.idle_count == 3
        finally:
            assert fleet.stop() == 0

    def test_acquire_degrades_to_available(self):
        fleet = WorkerFleet(2)
        fleet.start()
        try:
            ids = fleet.acquire(5)
            assert ids is not None and len(ids) == 2
            assert fleet.acquire(1, timeout=0.05) is None
            fleet.unreserve(ids)
            assert fleet.idle_count == 2
        finally:
            fleet.stop()

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigError):
            WorkerFleet(0)
        fleet = WorkerFleet(1)
        with pytest.raises(ConfigError):
            fleet.acquire(0)

    def test_crash_is_contained_and_worker_returns(self):
        """A poisoned assignment must not kill the worker thread — the
        fault domain of the serve daemon's job isolation."""
        fleet = WorkerFleet(1)
        fleet.start()
        try:
            ids = fleet.acquire(1)
            assert ids is not None

            def poisoned():
                raise RuntimeError("boom")

            fleet.assign(ids[0], poisoned, label="job-x/slave0")
            assert fleet.wait_idle(5.0)
            assert fleet.crash_log and fleet.crash_log[0][1] == "job-x/slave0"
            # The same worker is reusable afterwards.
            ids = fleet.acquire(1)
            assert ids == (0,)
            ran = threading.Event()
            fleet.assign(ids[0], ran.set, label="job-y/slave0")
            assert ran.wait(5.0)
            assert fleet.wait_idle(5.0)
        finally:
            assert fleet.stop() == 0


def _wire_job(problem, config, fleet, worker_ids, *, leave_after=None):
    """Wire one master over fleet workers (the daemon's launch path,
    by hand, so the test holds the live MasterPart)."""
    proc_size, thread_size = config.partitions_for(problem)
    partition = problem.build_partition(proc_size)
    policy = make_policy(config.scheduler, len(worker_ids), partition.grid.n_block_cols)
    stop = threading.Event()
    master_channels = []
    for k, worker_id in enumerate(worker_ids):
        master_end, slave_end = channel_pair()
        master_channels.append(master_end)
        slave = SlavePart(
            slave_id=k,
            channel=slave_end,
            problem=problem,
            partition=partition,
            thread_partition=thread_size,
            n_threads=config.threads_per_node,
            stop_event=stop,
            heartbeat_interval=config.heartbeat_interval,
            leave_after=leave_after if k == 0 else None,
        )
        fleet.assign(worker_id, slave.run, label=f"job/slave{k}")
    master = MasterPart(
        problem,
        partition,
        master_channels,
        policy,
        task_timeout=config.task_timeout,
        heartbeat_interval=config.heartbeat_interval,
        lease_factor=config.lease_factor,
    )
    return master, partition, thread_size, stop


class TestSharedFleetChurn:
    def test_concurrent_masters_with_join_and_leave_churn(self):
        """Satellite: several masters share one fleet; while they run,
        idle workers attach mid-run (attach_worker) and one founding
        worker per job departs (WorkerLeave via leave_after). Every job
        must still be oracle-identical and the fleet must come back
        fully idle with no leaked threads."""
        n_jobs = 3
        problems = [EditDistance.random(48, 48, seed=20 + i) for i in range(n_jobs)]
        oracles = [
            EasyHPS(RunConfig(backend="serial")).run(p).state for p in problems
        ]
        config = RunConfig(backend="threads", nodes=3, task_timeout=10.0)
        # 2 founding workers per job + spares that churn in as joiners.
        fleet = WorkerFleet(2 * n_jobs + 2)
        fleet.start()
        results = {}
        errors = []

        jobs = []
        try:
            for i, problem in enumerate(problems):
                ids = fleet.acquire(2)
                assert ids is not None and len(ids) == 2
                master, partition, thread_size, stop = _wire_job(
                    problem, config, fleet, ids, leave_after=1
                )
                jobs.append((i, problem, master, partition, thread_size, stop))

            def run_master(i, master, stop):
                try:
                    results[i] = master.run()
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append((i, exc))
                finally:
                    stop.set()

            runners = [
                threading.Thread(
                    target=run_master, args=(i, master, stop), daemon=True
                )
                for (i, _p, master, _pt, _ts, stop) in jobs
            ]
            for t in runners:
                t.start()

            # Churn: keep attaching spare workers to whichever job still
            # runs, round-robin, until every master finishes.
            spin = 0
            while any(t.is_alive() for t in runners) and spin < 200:
                spin += 1
                ids = fleet.acquire(1, timeout=0.02)
                if ids is None:
                    continue
                attached = False
                for (i, problem, master, partition, thread_size, stop) in jobs:
                    master_end, slave_end = channel_pair()
                    try:
                        new_id = master.attach_worker(master_end)
                    except SchedulerError:
                        continue  # that job already ended
                    joiner = SlavePart(
                        slave_id=new_id,
                        channel=slave_end,
                        problem=problem,
                        partition=partition,
                        thread_partition=thread_size,
                        n_threads=config.threads_per_node,
                        stop_event=stop,
                    )
                    fleet.assign(ids[0], joiner.run, label=f"job{i}/join{new_id}")
                    attached = True
                    break
                if not attached:
                    fleet.unreserve(ids)

            for t in runners:
                t.join(timeout=30.0)
            assert not any(t.is_alive() for t in runners), "a master hung"
        finally:
            for (_i, _p, _m, _pt, _ts, stop) in jobs:
                stop.set()

        assert not errors, errors
        assert fleet.wait_idle(15.0), "fleet did not return to idle"
        assert not fleet.crash_log, fleet.crash_log
        for i, oracle in enumerate(oracles):
            for key in oracle:
                assert np.array_equal(oracle[key], results[i][key]), (
                    f"job {i} diverged from its oracle"
                )
        # Each job's worker 0 left cleanly; joins happened across jobs.
        total_left = sum(m.stats.workers_left for (_i, _p, m, _pt, _ts, _s) in jobs)
        total_joined = sum(
            m.stats.workers_joined for (_i, _p, m, _pt, _ts, _s) in jobs
        )
        assert total_left == n_jobs
        assert total_joined >= 1
        assert fleet.stop() == 0
