"""Queue-ordering policies of the serve daemon."""

import pytest

from repro.serve.job import JobRecord, JobSpec
from repro.serve.policy import (
    ORDERING_POLICIES,
    FairSharePolicy,
    LotteryPolicy,
    make_ordering_policy,
)
from repro.utils.errors import ConfigError


def _record(job_id, tenant="t", cost=1.0, submitted=0.0):
    rec = JobRecord(job_id, JobSpec(tenant=tenant), submitted_at=submitted)
    rec.est_cost = cost
    return rec


class TestRegistry:
    def test_all_names_construct(self):
        for name in ORDERING_POLICIES:
            assert make_ordering_policy(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            make_ordering_policy("srtf")


class TestFIFO:
    def test_picks_head(self):
        policy = make_ordering_policy("fifo")
        queue = [_record("a"), _record("b"), _record("c")]
        assert policy.select(queue, 1.0) == 0


class TestSJF:
    def test_picks_cheapest(self):
        policy = make_ordering_policy("sjf")
        queue = [_record("a", cost=30), _record("b", cost=5), _record("c", cost=10)]
        assert policy.select(queue, 1.0) == 1

    def test_tie_falls_back_to_fifo(self):
        policy = make_ordering_policy("sjf")
        queue = [_record("a", cost=5), _record("b", cost=5)]
        assert policy.select(queue, 1.0) == 0


class TestHRRN:
    def test_short_job_wins_at_equal_wait(self):
        policy = make_ordering_policy("hrrn", rate=1.0)
        queue = [_record("long", cost=100, submitted=0.0),
                 _record("short", cost=1, submitted=0.0)]
        assert policy.select(queue, 10.0) == 1

    def test_aging_rescues_long_waiter(self):
        policy = make_ordering_policy("hrrn", rate=1.0)
        # The long job has waited 1000s, the short one just arrived:
        # (1000+100)/100 = 11 beats (0+1)/1 = 1.
        queue = [_record("long", cost=100, submitted=0.0),
                 _record("short", cost=1, submitted=1000.0)]
        assert policy.select(queue, 1000.0) == 0

    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigError):
            make_ordering_policy("hrrn", rate=0.0)


class TestFairShare:
    def test_fresh_tenant_goes_first(self):
        policy = FairSharePolicy()
        hog = _record("h1", tenant="hog")
        policy.note_started(hog, 0.0)
        policy.note_finished(hog, 50.0)
        queue = [_record("h2", tenant="hog"), _record("n1", tenant="new")]
        assert policy.select(queue, 60.0) == 1

    def test_running_time_counts_against_tenant(self):
        policy = FairSharePolicy()
        live = _record("h1", tenant="hog")
        policy.note_started(live, 0.0)  # still running at select time
        queue = [_record("h2", tenant="hog"), _record("n1", tenant="new")]
        assert policy.select(queue, 30.0) == 1

    def test_balances_alternating(self):
        policy = FairSharePolicy()
        picked = []
        now = 0.0
        queue = [
            _record("a1", tenant="a"), _record("a2", tenant="a"),
            _record("b1", tenant="b"), _record("b2", tenant="b"),
        ]
        while queue:
            idx = policy.select(queue, now)
            rec = queue.pop(idx)
            picked.append(rec.spec.tenant)
            policy.note_started(rec, now)
            policy.note_finished(rec, now + 10.0)
            now += 10.0
        # Strict alternation: each pick goes to the least-served tenant.
        assert picked in (["a", "b", "a", "b"], ["b", "a", "b", "a"])


class TestLottery:
    def test_deterministic_given_seed(self):
        queue = [_record(f"j{i}", tenant=f"t{i % 3}") for i in range(9)]
        a = [LotteryPolicy(seed=7).select(queue, 0.0) for _ in range(1)]
        b = [LotteryPolicy(seed=7).select(queue, 0.0) for _ in range(1)]
        assert a == b
        seq1 = LotteryPolicy(seed=7)
        seq2 = LotteryPolicy(seed=7)
        assert [seq1.select(queue, 0.0) for _ in range(20)] == [
            seq2.select(queue, 0.0) for _ in range(20)
        ]

    def test_winner_is_tenants_oldest_job(self):
        policy = LotteryPolicy(seed=0)
        queue = [_record("x1", tenant="x"), _record("y1", tenant="y"),
                 _record("x2", tenant="x"), _record("y2", tenant="y")]
        for _ in range(10):
            idx = policy.select(queue, 0.0)
            assert idx in (0, 1)  # always a tenant's first queued job

    def test_flooding_does_not_buy_tickets(self):
        """Tenant draw is uniform over tenants, not jobs: a tenant with
        9x the queued jobs should win ~half the draws, not ~90%."""
        policy = LotteryPolicy(seed=42)
        queue = [_record(f"f{i}", tenant="flood") for i in range(18)]
        queue.append(_record("s1", tenant="small"))
        wins_small = sum(
            1 for _ in range(200)
            if queue[policy.select(queue, 0.0)].spec.tenant == "small"
        )
        assert 60 <= wins_small <= 140
