"""Admission watermarks: pressure probes, resource shedding, attribution."""

import pytest

from repro.serve import JobSpec, ServeDaemon
from repro.serve.admission import SHED_RESOURCE, AdmissionController
from repro.serve.job import JobRecord
from repro.serve.pressure import PressureProbe, ResourceWatermarks
from repro.utils.errors import ConfigError


def _record(job_id="job-1", tenant="t"):
    return JobRecord(job_id, JobSpec(tenant=tenant, algo="lcs", size=16))


class TestWatermarks:
    def test_defaults_are_disabled(self):
        wm = ResourceWatermarks()
        assert not wm.enabled
        assert PressureProbe(wm).check() is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            ResourceWatermarks(min_disk_bytes=-1)
        with pytest.raises(ConfigError):
            ResourceWatermarks(max_fd_fraction=0.0)
        with pytest.raises(ConfigError):
            ResourceWatermarks(max_fd_fraction=1.5)

    def test_disk_floor_trips_with_reason(self):
        wm = ResourceWatermarks(min_disk_bytes=1 << 20)
        probe = PressureProbe(wm, interval=0.0, disk_fn=lambda path: 1 << 10)
        reason = probe.check()
        assert reason is not None
        assert reason.startswith(f"{SHED_RESOURCE}:disk:")
        assert probe.trips == 1

    def test_memory_and_fd_floors(self):
        wm = ResourceWatermarks(min_memory_bytes=1 << 30, max_fd_fraction=0.5)
        low_mem = PressureProbe(wm, interval=0.0, memory_fn=lambda: 1 << 20,
                                fd_fn=lambda: (0, 1024))
        assert low_mem.check().startswith(f"{SHED_RESOURCE}:memory:")
        fd_heavy = PressureProbe(wm, interval=0.0, memory_fn=lambda: 1 << 31,
                                 fd_fn=lambda: (600, 1024))
        assert fd_heavy.check().startswith(f"{SHED_RESOURCE}:fd:")

    def test_unreadable_samplers_read_healthy(self):
        wm = ResourceWatermarks(min_disk_bytes=1, min_memory_bytes=1,
                                max_fd_fraction=0.5)
        probe = PressureProbe(wm, interval=0.0, disk_fn=lambda path: None,
                              memory_fn=lambda: None, fd_fn=lambda: None)
        assert probe.check() is None

    def test_samples_are_cached_for_interval(self):
        calls = []
        wm = ResourceWatermarks(min_disk_bytes=1 << 20)
        probe = PressureProbe(
            wm, interval=3600.0,
            disk_fn=lambda path: calls.append(path) or (1 << 30),
        )
        for _ in range(10):
            assert probe.check() is None
        assert len(calls) == 1

    def test_real_samplers_return_plausible_values(self):
        from repro.serve.pressure import (
            available_memory_bytes,
            fd_usage,
            free_disk_bytes,
        )

        disk = free_disk_bytes(".")
        assert disk is None or disk >= 0
        mem = available_memory_bytes()
        assert mem is None or mem > 0
        fds = fd_usage()
        if fds is not None:
            n_open, limit = fds
            assert 0 < n_open <= limit


class TestAdmissionShedding:
    def test_pressure_sheds_before_capacity(self):
        ctrl = AdmissionController(
            8, pressure_probe=lambda: f"{SHED_RESOURCE}:disk: free 0B < floor 1MB"
        )
        decision = ctrl.admit(_record())
        assert not decision.accepted
        assert decision.reason.startswith(f"{SHED_RESOURCE}:disk")
        assert ctrl.resource_sheds == 1
        assert ctrl.shed_by_tenant == {"t": 1}
        assert ctrl.depth == 0

    def test_healthy_probe_admits(self):
        ctrl = AdmissionController(8, pressure_probe=lambda: None)
        assert ctrl.admit(_record()).accepted

    def test_restore_bypasses_pressure(self):
        # WAL-recovered jobs were already acknowledged; pressure must
        # never shed them on resume.
        ctrl = AdmissionController(
            1, pressure_probe=lambda: f"{SHED_RESOURCE}:disk: full"
        )
        ctrl.restore(_record("job-1"))
        ctrl.restore(_record("job-2"))
        assert ctrl.depth == 2


class TestDaemonWiring:
    def test_daemon_under_pressure_sheds_with_reason(self):
        daemon = ServeDaemon(
            workers=1,
            watermarks=ResourceWatermarks(min_disk_bytes=1 << 20),
            pressure_interval=0.0,
        )
        daemon.pressure._disk_fn = lambda path: 0  # inject: disk is full
        daemon.start()
        try:
            decision = daemon.submit(JobSpec(algo="lcs", size=16, nodes=2))
            assert not decision.accepted
            assert decision.reason.startswith(f"{SHED_RESOURCE}:disk")
            stats = daemon.tenant_stats()
            assert stats["resource_sheds"] == 1
            assert stats["pressure_trips"] >= 1
            assert stats["counters"]["serve.resource_sheds{tenant=default}"] == 1
        finally:
            daemon.drain(10.0)

    def test_daemon_without_watermarks_has_no_probe(self):
        daemon = ServeDaemon(workers=1)
        assert daemon.pressure is None
        assert daemon.admission.pressure_probe is None
