"""The serve submission WAL: round-trips, torn tails, resume semantics."""

import os

import pytest

from repro.serve.job import JobSpec
from repro.serve.wal import MAGIC, ServeJournal, scan_serve_journal
from repro.utils.errors import JournalError


def _spec(tenant="t", seed=0):
    return JobSpec(tenant=tenant, algo="lcs", size=16, seed=seed)


class TestRoundTrip:
    def test_submit_start_finish_history(self, tmp_path):
        path = str(tmp_path / "serve.srvj")
        wal = ServeJournal.create(path, fsync=False)
        wal.submit("job-1", _spec("a"))
        wal.submit("job-2", _spec("b", seed=1))
        wal.start("job-1", "/tmp/job-1.walj")
        wal.finish("job-1", "done", "digest abc")
        wal.close()

        scan = scan_serve_journal(path)
        assert scan.order == ["job-1", "job-2"]
        assert not scan.truncated
        assert scan.entries["job-1"].status == "done"
        assert scan.entries["job-1"].detail == "digest abc"
        assert scan.entries["job-1"].run_journal == "/tmp/job-1.walj"
        assert scan.entries["job-2"].status == "submitted"
        pending = scan.pending()
        assert [e.job_id for e in pending] == ["job-2"]
        assert pending[0].spec == _spec("b", seed=1)
        assert scan.max_job_number == 2

    def test_finish_requires_terminal_status(self, tmp_path):
        wal = ServeJournal.create(str(tmp_path / "x.srvj"))
        with pytest.raises(JournalError):
            wal.finish("job-1", "running")
        wal.close()

    def test_spec_chaos_profile_round_trips(self, tmp_path):
        path = str(tmp_path / "serve.srvj")
        spec = JobSpec(tenant="evil", algo="lcs", size=16,
                       integrity="audit", chaos={"worker_p_lie": 0.8, "seed": 5})
        with ServeJournal.create(path, fsync=False) as wal:
            wal.submit("job-1", spec)
        recovered = scan_serve_journal(path).entries["job-1"].spec
        assert dict(recovered.chaos) == {"worker_p_lie": 0.8, "seed": 5}
        assert recovered.integrity == "audit"


class TestTornTails:
    def test_torn_tail_recovers_prefix(self, tmp_path):
        path = str(tmp_path / "serve.srvj")
        with ServeJournal.create(path, fsync=False) as wal:
            wal.submit("job-1", _spec())
            wal.submit("job-2", _spec(seed=1))
        intact = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(b"\x99\x00\x00\x00\xde\xad\xbe\xeftorn")
        scan = scan_serve_journal(path)
        assert scan.truncated
        assert scan.valid_bytes == intact
        assert scan.order == ["job-1", "job-2"]

    def test_open_resume_truncates_torn_tail(self, tmp_path):
        path = str(tmp_path / "serve.srvj")
        with ServeJournal.create(path, fsync=False) as wal:
            wal.submit("job-1", _spec())
        with open(path, "ab") as fh:
            fh.write(b"\x07\x00\x00\x00garbage-without-crc")
        scan = scan_serve_journal(path)
        wal = ServeJournal.open_resume(scan, fsync=False)
        wal.finish("job-1", "done")
        wal.close()
        rescan = scan_serve_journal(path)
        assert not rescan.truncated
        assert rescan.entries["job-1"].status == "done"

    def test_abandon_mimics_kill(self, tmp_path):
        """abandon() drops the handle without an end record — the file
        must still scan cleanly up to the last flushed record."""
        path = str(tmp_path / "serve.srvj")
        wal = ServeJournal.create(path, fsync=False)
        wal.submit("job-1", _spec())
        wal.start("job-1")
        wal.abandon()
        with pytest.raises(JournalError):
            wal.submit("job-2", _spec())
        scan = scan_serve_journal(path)
        assert scan.entries["job-1"].status == "started"
        assert [e.job_id for e in scan.pending()] == ["job-1"]

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "not-a-journal")
        with open(path, "wb") as fh:
            fh.write(b"something else entirely")
        with pytest.raises(JournalError):
            scan_serve_journal(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            scan_serve_journal(str(tmp_path / "absent.srvj"))

    def test_magic_distinct_from_commit_journal(self):
        from repro.durable.journal import MAGIC as RUN_MAGIC

        assert MAGIC != RUN_MAGIC
