"""ServeJournal compaction, I/O fault injection, and daemon WAL bounds."""

import os

import pytest

from repro.cluster.faults import IoFaultPlan, IoFaultRule, IoPolicy
from repro.serve import JobSpec, ServeDaemon
from repro.serve.wal import ServeJournal, scan_serve_journal
from repro.utils.errors import JournalIOError


def _spec(tenant="t", seed=0):
    return JobSpec(tenant=tenant, algo="lcs", size=16, seed=seed)


def _filled_wal(path, n_finished, n_pending=1):
    wal = ServeJournal.create(str(path), fsync=False)
    for i in range(n_finished):
        wal.submit(f"job-{i}", _spec(seed=i))
        wal.start(f"job-{i}", f"/tmp/job-{i}.walj")
        wal.finish(f"job-{i}", "done", f"digest {i}", "")
    for i in range(n_finished, n_finished + n_pending):
        wal.submit(f"job-{i}", _spec(seed=i))
    return wal


class TestCompaction:
    def test_compact_bounds_history_keeps_pending(self, tmp_path):
        path = tmp_path / "serve.srvj"
        wal = _filled_wal(path, n_finished=10, n_pending=2)
        before = os.path.getsize(path)
        dropped = wal.compact(scan_serve_journal(str(path)).entries.values(),
                              keep_history=3)
        wal.close()
        assert dropped == 7
        assert os.path.getsize(path) < before
        scan = scan_serve_journal(str(path))
        # The 3 newest finished jobs survive with outcomes intact; every
        # pending job survives regardless of the history bound.
        assert scan.order == ["job-7", "job-8", "job-9", "job-10", "job-11"]
        assert scan.entries["job-9"].status == "done"
        assert scan.entries["job-9"].detail == "digest 9"
        assert scan.entries["job-9"].run_journal == "/tmp/job-9.walj"
        assert [e.job_id for e in scan.pending()] == ["job-10", "job-11"]

    def test_compacted_log_accepts_further_appends(self, tmp_path):
        path = tmp_path / "serve.srvj"
        wal = _filled_wal(path, n_finished=5)
        wal.compact(scan_serve_journal(str(path)).entries.values(), keep_history=1)
        wal.finish("job-5", "done", "after compact", "")
        wal.close()
        scan = scan_serve_journal(str(path))
        assert not scan.truncated
        assert scan.entries["job-5"].status == "done"
        assert scan.entries["job-5"].detail == "after compact"

    def test_reason_round_trips_through_compaction(self, tmp_path):
        path = tmp_path / "serve.srvj"
        wal = ServeJournal.create(str(path), fsync=False)
        wal.submit("job-1", _spec())
        wal.finish("job-1", "aborted", "disk full",
                   "resource-exhausted:disk:journal-write")
        wal.compact(scan_serve_journal(str(path)).entries.values())
        wal.close()
        entry = scan_serve_journal(str(path)).entries["job-1"]
        assert entry.reason == "resource-exhausted:disk:journal-write"

    def test_callable_entries_snapshot_under_lock(self, tmp_path):
        path = tmp_path / "serve.srvj"
        wal = _filled_wal(path, n_finished=2)
        wal.compact(lambda: scan_serve_journal(str(path)).entries.values(),
                    keep_history=1)
        wal.close()
        assert scan_serve_journal(str(path)).order == ["job-1", "job-2"]

    def test_failed_compaction_leaves_old_log_intact(self, tmp_path):
        path = tmp_path / "serve.srvj"
        wal = _filled_wal(path, n_finished=3)
        # Every WAL append so far consumed write indices 0..8; the
        # compaction's tmp write is the next one.
        wal.io_policy = IoPolicy(
            IoFaultPlan([IoFaultRule("write", "enospc", after=0)]), "serve-wal"
        )
        with pytest.raises(JournalIOError) as err:
            wal.compact(scan_serve_journal(str(path)).entries.values())
        assert err.value.op == "compact"
        wal.io_policy = None
        wal.close()
        assert not list(tmp_path.glob("*.tmp"))
        scan = scan_serve_journal(str(path))
        assert not scan.truncated and len(scan.order) == 4


class TestWalFaults:
    def test_write_fault_repairs_to_good_prefix(self, tmp_path):
        path = tmp_path / "serve.srvj"
        policy = IoPolicy(
            IoFaultPlan([IoFaultRule("write", "partial", index=1)]), "serve-wal"
        )
        wal = ServeJournal.create(str(path), fsync=False, io_policy=policy)
        wal.submit("job-1", _spec())
        with pytest.raises(JournalIOError):
            wal.submit("job-2", _spec(seed=1))
        assert wal.write_errors == 1
        wal.submit("job-3", _spec(seed=2))  # index 2: clean again
        wal.close()
        scan = scan_serve_journal(str(path))
        assert not scan.truncated  # torn frame truncated away by repair
        assert scan.order == ["job-1", "job-3"]

    def test_fsync_fault_surfaces_with_op(self, tmp_path):
        policy = IoPolicy(
            IoFaultPlan([IoFaultRule("fsync", "fsync-fail", index=0)]), "serve-wal"
        )
        wal = ServeJournal.create(
            str(tmp_path / "s.srvj"), fsync=True, io_policy=policy
        )
        with pytest.raises(JournalIOError) as err:
            wal.submit("job-1", _spec())
        assert err.value.op == "fsync"
        wal.close()


class TestDaemonIntegration:
    def test_auto_compaction_bounds_a_long_lived_wal(self, tmp_path):
        daemon = ServeDaemon(
            workers=2, queue_cap=32, task_timeout=5.0,
            wal_path=str(tmp_path / "serve.srvj"),
            wal_compact_interval=4, wal_keep_history=2,
        )
        daemon.start()
        try:
            for i in range(8):
                decision = daemon.submit(
                    JobSpec(algo="lcs", size=16, seed=i, nodes=2)
                )
                assert decision.accepted
            assert daemon.wait_idle(60.0)
        finally:
            daemon.drain(20.0)
        assert daemon._wal.compactions >= 1
        scan = scan_serve_journal(str(tmp_path / "serve.srvj"))
        assert not scan.truncated
        # Bounded: far fewer than the 8 submitted jobs remain, and the
        # survivors all carry their terminal outcome.
        assert len(scan.order) <= 2 + 4  # keep_history + one interval
        assert all(scan.entries[j].finished for j in scan.order)

    def test_wal_submit_failure_sheds_instead_of_acking(self, tmp_path):
        daemon = ServeDaemon(
            workers=1, queue_cap=8,
            wal_path=str(tmp_path / "serve.srvj"),
            io_fault_plan=IoFaultPlan([IoFaultRule("write", "enospc", after=0)]),
        )
        daemon.start()
        try:
            decision = daemon.submit(JobSpec(algo="lcs", size=16, nodes=2))
            assert not decision.accepted
            assert decision.reason.startswith("resource-pressure:wal-write")
            stats = daemon.tenant_stats()
            assert stats["counters"]["serve.resource_sheds{tenant=default}"] == 1
            # The revoked record is terminal, never silently queued.
            records = daemon.jobs()
            assert all(r["status"] == "cancelled" for r in records)
        finally:
            daemon.drain(10.0)
