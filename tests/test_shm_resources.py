"""Shm resource faults: inline fallback, error visibility, no silent drops."""

import numpy as np
import pytest

from repro.cluster.faults import IoFaultPlan, IoFaultRule, IoPolicy
from repro.comm.messages import BlockRef, TaskAssign
from repro.comm.serialization import content_digest
from repro.comm.shm import (
    SHM_ERRORS,
    SHM_MIN_BYTES,
    BlockStore,
    ShmChannel,
    attach_copy,
    drain_shm_errors,
    leaked_segments,
    run_prefix,
    sweep_segments,
)
from repro.comm.transport import channel_pair
from repro.obs import EventRecorder, MetricsRegistry


def big(seed=0, shape=(64, 64)):
    arr = np.random.default_rng(seed).standard_normal(shape)
    assert arr.nbytes >= SHM_MIN_BYTES
    return arr


def faulted_store(prefix, rules):
    return BlockStore(prefix, io_policy=IoPolicy(IoFaultPlan(rules), "shm"))


class TestParkFaults:
    def test_park_fault_raises_oserror(self):
        prefix = run_prefix()
        store = faulted_store(prefix, [IoFaultRule("shm", "enospc", index=0)])
        with pytest.raises(OSError) as err:
            store.park(big())
        assert err.value.errno == 28
        assert store.park_failures == 1
        assert leaked_segments(prefix) == []  # nothing was allocated

    def test_park_recovers_on_next_allocation(self):
        prefix = run_prefix()
        store = faulted_store(prefix, [IoFaultRule("shm", "emfile", index=0)])
        with pytest.raises(OSError):
            store.park(big())
        ref = store.park(big())  # index 1: clean
        assert isinstance(ref, BlockRef)
        assert np.array_equal(attach_copy(ref), big())
        sweep_segments(prefix)


class TestInlineFallback:
    def test_channel_falls_back_to_inline_payload(self):
        prefix = run_prefix()
        store = faulted_store(prefix, [IoFaultRule("shm", "enospc", after=0)])
        a, b = channel_pair()
        sender = ShmChannel(a, store)
        arr = big(3)
        sender.send(TaskAssign((0, 0), 0, {"x": arr}))
        msg = b.recv(timeout=1.0)
        # Every park failed, so the arrays crossed inline — bitwise
        # intact, no BlockRef in sight, nothing in /dev/shm.
        assert not isinstance(msg.inputs["x"], BlockRef)
        assert np.array_equal(msg.inputs["x"], arr)
        assert content_digest(msg.inputs["x"]) == content_digest(arr)
        assert sender.park_degrades == 1
        assert leaked_segments(prefix) == []
        sender.close()
        b.close()

    def test_fallback_emits_resource_degrade_event(self):
        prefix = run_prefix()
        store = faulted_store(prefix, [IoFaultRule("shm", "enospc", after=0)])
        a, b = channel_pair()
        rec = EventRecorder()
        sender = ShmChannel(a, store)
        sender.instrument(rec, endpoint="slave0")
        sender.send(TaskAssign((0, 0), 0, {"x": big()}))
        b.recv(timeout=1.0)
        events = [e for e in rec.events() if e.kind == "resource-degrade"]
        assert len(events) == 1
        assert events[0].data["layer"] == "shm"
        assert events[0].data["action"] == "inline-fallback"
        assert events[0].data["n_arrays"] == 1
        sender.close()
        b.close()

    def test_partial_fallback_mixes_refs_and_inline(self):
        prefix = run_prefix()
        # Second park fails, first and third succeed.
        store = faulted_store(prefix, [IoFaultRule("shm", "enospc", index=1)])
        a, b = channel_pair()
        sender = ShmChannel(a, store)
        arrs = {"p": big(0), "q": big(1), "r": big(2)}
        sender.send(TaskAssign((0, 0), 0, dict(arrs)))
        msg = b.recv(timeout=1.0)
        kinds = {k: isinstance(v, BlockRef) for k, v in msg.inputs.items()}
        assert sum(kinds.values()) == 2  # two parked, one inline
        for k, v in msg.inputs.items():
            got = attach_copy(v) if isinstance(v, BlockRef) else v
            assert np.array_equal(got, arrs[k])
        sender.close()
        b.close()
        sweep_segments(prefix)


class TestErrorVisibility:
    def test_error_log_notes_and_drains_by_prefix(self):
        SHM_ERRORS.drain()  # isolate from other tests
        SHM_ERRORS.note("unlink", "pfx-a-seg1", OSError(24, "too many"))
        SHM_ERRORS.note("unlink", "pfx-b-seg1", OSError(13, "denied"))
        drained = SHM_ERRORS.drain("pfx-a")
        assert [e.name for e in drained] == ["pfx-a-seg1"]
        assert drained[0].errno == 24
        # The other prefix's entry is still pending.
        assert [e.name for e in SHM_ERRORS.drain()] == ["pfx-b-seg1"]

    def test_drain_shm_errors_feeds_metrics_and_obs(self):
        SHM_ERRORS.drain()
        SHM_ERRORS.note("unlink", "run-x-1", OSError(24, "emfile"))
        SHM_ERRORS.note("listdir", None, OSError(5, "eio"))
        metrics = MetricsRegistry()
        rec = EventRecorder()
        n = drain_shm_errors("run-x", metrics=metrics, obs=rec)
        assert n == 2  # nameless entries always match
        counters = metrics.snapshot()["counters"]
        assert sum(v for k, v in counters.items()
                   if k.startswith("comm.shm.errors")) == 2
        kinds = [e for e in rec.events() if e.kind == "shm-error"]
        assert len(kinds) == 2
        assert {e.data["op"] for e in kinds} == {"unlink", "listdir"}

    def test_file_not_found_unlink_stays_silent(self):
        SHM_ERRORS.drain()
        prefix = run_prefix()
        store = BlockStore(prefix)
        ref = store.park(big())
        attach_copy(ref)          # receiver unlinked the segment
        store.sweep()             # sweeping the already-gone segment: quiet
        sweep_segments(prefix)
        assert SHM_ERRORS.drain(prefix) == ()
