"""Unit + integration tests of the discrete-event simulated backend."""

import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance, Nussinov, SmithWatermanGG
from repro.backends.simulated import (
    paper_core_range,
    run_simulated,
    simulate_level,
    simulated_serial_makespan,
)
from repro.dag.library import ChainPattern, WavefrontPattern
from repro.schedulers.policy import make_policy
from repro.utils.errors import SchedulerError


class TestSimulateLevel:
    def test_chain_is_fully_sequential(self):
        pat = ChainPattern(10)
        costs = {v: 2.0 for v in pat.vertices()}
        makespan, busy, idle = simulate_level(pat, costs, 4, make_policy("dynamic", 4, 1))
        assert makespan == 20.0
        assert busy == 20.0
        assert idle == 0.0

    def test_independent_tasks_scale_with_workers(self):
        # A 1-row wavefront is a chain; use a tall 1-col? Instead: many
        # sources via a wavefront's first anti-diagonal is still serial,
        # so build independence from a wide wavefront's steady state.
        pat = WavefrontPattern(1, 12)
        costs = {v: 1.0 for v in pat.vertices()}
        makespan, _, _ = simulate_level(pat, costs, 4, make_policy("dynamic", 4, 12))
        assert makespan == 12.0  # single row = chain, workers cannot help

    def test_wavefront_parallelism(self):
        pat = WavefrontPattern(6, 6)
        costs = {v: 1.0 for v in pat.vertices()}
        m1, _, _ = simulate_level(pat, costs, 1, make_policy("dynamic", 1, 6))
        m4, _, _ = simulate_level(pat, costs, 4, make_policy("dynamic", 4, 6))
        assert m1 == 36.0
        assert 11.0 <= m4 <= 20.0  # critical path 11, work bound 9

    def test_dynamic_never_idles_while_ready(self):
        pat = WavefrontPattern(8, 8)
        costs = {v: 1.0 for v in pat.vertices()}
        _, _, idle = simulate_level(pat, costs, 3, make_policy("dynamic", 3, 8))
        assert idle == 0.0

    def test_cw_idles_while_ready(self):
        pat = WavefrontPattern(8, 8)
        costs = {v: 1.0 for v in pat.vertices()}
        m_dyn, _, _ = simulate_level(pat, costs, 4, make_policy("dynamic", 4, 8))
        m_cw, _, idle = simulate_level(pat, costs, 4, make_policy("cw", 4, 8))
        assert idle > 0.0
        assert m_cw > m_dyn

    def test_overhead_charged_per_task(self):
        pat = ChainPattern(5)
        costs = {v: 1.0 for v in pat.vertices()}
        m, _, _ = simulate_level(pat, costs, 1, make_policy("dynamic", 1, 1), overhead=0.5)
        assert m == 7.5

    def test_missing_cost_raises(self):
        pat = ChainPattern(3)
        with pytest.raises(KeyError):
            simulate_level(pat, {}, 1, make_policy("dynamic", 1, 1))


class TestSimulatedRun:
    def test_deterministic(self):
        sw = SmithWatermanGG.random(500, seed=1)
        cfg = RunConfig.experiment(3, 11, process_partition=100, thread_partition=25)
        reps = [run_simulated(sw, cfg)[1].makespan for _ in range(3)]
        assert reps[0] == reps[1] == reps[2]

    def test_all_tasks_execute_once_without_faults(self):
        ed = EditDistance.random(200, 200, seed=2)
        cfg = RunConfig.experiment(3, 11, process_partition=50, thread_partition=10)
        _, rep = run_simulated(ed, cfg)
        assert rep.n_tasks == 16
        assert sum(rep.tasks_per_worker.values()) == 16
        assert rep.faults_recovered == 0

    def test_more_cores_reduce_makespan(self):
        sw = SmithWatermanGG.random(2000, seed=3)
        times = []
        for cores in (7, 17, 27):
            cfg = RunConfig.experiment(3, cores, process_partition=200, thread_partition=25)
            _, rep = run_simulated(sw, cfg)
            times.append(rep.makespan)
        assert times[0] > times[1] > times[2]

    def test_value_is_none_but_report_complete(self):
        nu = Nussinov.random(300, seed=4)
        run = EasyHPS(RunConfig.experiment(3, 11, process_partition=75, thread_partition=25)).run(nu)
        assert run.value is None
        assert run.state is None
        assert run.report.makespan > 0
        assert run.report.total_cores == 11

    def test_utilization_bounded(self):
        sw = SmithWatermanGG.random(1000, seed=5)
        cfg = RunConfig.experiment(4, 22, process_partition=100, thread_partition=20)
        _, rep = run_simulated(sw, cfg)
        assert 0.0 < rep.utilization <= 1.0

    def test_communication_volume_counted(self):
        sw = SmithWatermanGG.random(500, seed=1)
        cfg = RunConfig.experiment(3, 11, process_partition=100, thread_partition=25)
        _, rep = run_simulated(sw, cfg)
        assert rep.bytes_to_slaves > rep.bytes_to_master > 0
        # idle + assign + result per task, minimum.
        assert rep.messages == 3 * rep.n_tasks

    def test_slower_link_hurts(self):
        from repro.cluster.network import GIGABIT_ETHERNET

        sw = SmithWatermanGG.random(2000, seed=1)
        fast = RunConfig.experiment(3, 17, process_partition=200, thread_partition=25)
        slow_cluster = fast.cluster_spec().with_link(GIGABIT_ETHERNET)
        slow = RunConfig.experiment(3, 17, process_partition=200, thread_partition=25,
                                    cluster=slow_cluster)
        _, rf = run_simulated(sw, fast)
        _, rs = run_simulated(sw, slow)
        assert rs.makespan > rf.makespan

    def test_contention_hurts_packed_nodes(self):
        from dataclasses import replace

        from repro.cluster.machine import NodeSpec
        from repro.cluster.topology import experiment_layout

        sw = SmithWatermanGG.random(1000, seed=1)
        base = experiment_layout(2, 13)  # 11 threads on one node
        no_contention = replace(
            base, compute_nodes=tuple(replace(n, contention=0.0) for n in base.compute_nodes)
        )
        cfg_c = RunConfig(nodes=2, threads_per_node=11, backend="simulated", cluster=base,
                          process_partition=100, thread_partition=10)
        cfg_n = RunConfig(nodes=2, threads_per_node=11, backend="simulated", cluster=no_contention,
                          process_partition=100, thread_partition=10)
        assert run_simulated(sw, cfg_c)[1].makespan > run_simulated(sw, cfg_n)[1].makespan


class TestSerialBaseline:
    def test_matches_total_work(self):
        ed = EditDistance.random(100, 100, seed=1)
        cfg = RunConfig.experiment(2, 5)
        base = simulated_serial_makespan(ed, cfg)
        spec = cfg.cluster_spec().compute_nodes[0]
        assert base == pytest.approx(3.0 * 100 * 100 / spec.flops_per_second)

    def test_triangular_baseline(self):
        nu = Nussinov.random(100, seed=1)
        cfg = RunConfig.experiment(2, 5)
        assert simulated_serial_makespan(nu, cfg) > 0


class TestPaperCoreRanges:
    def test_match_section_vi(self):
        # X=2: Y = 3 + ct, ct = 1..11 -> the paper's 4 <= K2 <= 14 range.
        assert paper_core_range(2) == [4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14]
        assert paper_core_range(5)[0] == 13
        assert paper_core_range(4)[-1] == 40
