"""Silent-data-corruption modeling in the simulated backend.

The simulator is omniscient: it tracks corruption as *taint* rather than
corrupting actual values, so every test can assert directly on how much
wrongness survived (``sim.undetected_corruptions``) under each defense
tier — the ground truth the chaos campaigns classify against.
"""

import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance
from repro.cluster.faults import (
    MessageFaultPlan,
    WorkerFaultPlan,
    WorkerFaultRule,
)
from repro.utils.errors import FaultToleranceExhausted


@pytest.fixture
def problem():
    return EditDistance.random(96, 96, seed=7)


def run(problem, **kw):
    base = dict(
        nodes=4,
        backend="simulated",
        process_partition=16,
        observe=True,
    )
    base.update(kw)
    return EasyHPS(RunConfig(**base)).run(problem)


def counters(report):
    return (report.metrics or {}).get("counters", {})


LIAR_1 = WorkerFaultPlan([WorkerFaultRule("liar", worker_id=1, after_tasks=0)])


class TestLiarTaint:
    def test_undefended_lies_survive_as_undetected_taint(self, problem):
        rep = run(problem, integrity="off", worker_fault_plan=LIAR_1).report
        assert counters(rep)["sim.undetected_corruptions"] > 0
        # Zero-cost invariant: no integrity machinery ran.
        assert not [k for k in counters(rep) if str(k).startswith("integrity.")]
        assert rep.run_digest is None

    def test_digest_only_is_blind_to_lies(self, problem):
        rep = run(problem, integrity="digest", worker_fault_plan=LIAR_1).report
        assert counters(rep)["sim.undetected_corruptions"] > 0
        assert rep.digest_rejects == 0

    def test_full_audit_leaves_no_taint(self, problem):
        rep = run(
            problem,
            integrity="audit",
            audit_fraction=1.0,
            worker_fault_plan=LIAR_1,
        ).report
        assert counters(rep)["sim.undetected_corruptions"] == 0
        assert rep.audits_convicted >= 1
        assert rep.tainted_recomputes >= 1
        assert counters(rep)["integrity.audits_convicted"] == rep.audits_convicted

    def test_audit_quarantines_a_persistent_liar(self, problem):
        rep = run(
            problem,
            integrity="audit",
            audit_fraction=1.0,
            quarantine_threshold=2,
            worker_fault_plan=LIAR_1,
        ).report
        assert 1 in rep.quarantined_workers
        assert counters(rep)["sim.undetected_corruptions"] == 0

    def test_vote_mode_leaves_no_taint_at_message_cost(self, problem):
        clean = run(problem, integrity="digest").report
        voted = run(
            problem, integrity="vote", vote_k=2, worker_fault_plan=LIAR_1
        ).report
        assert counters(voted)["sim.undetected_corruptions"] == 0
        assert counters(voted)["integrity.votes_cast"] > 0
        # Replication is not free: the vote run moved more messages.
        assert voted.messages > clean.messages


class TestTransitCorruption:
    def corrupt_plan(self, p=0.08, seed=3):
        return MessageFaultPlan.random(p, seed=seed, kinds=("corrupt",))

    def bitflip_plan(self, p=0.08, seed=3):
        return MessageFaultPlan.random(p, seed=seed, kinds=("bitflip",))

    def test_stale_digest_corruption_detected_and_requeued(self, problem):
        rep = run(
            problem,
            integrity="digest",
            max_retries=8,
            message_fault_plan=self.corrupt_plan(),
        ).report
        assert counters(rep)["sim.undetected_corruptions"] == 0
        assert rep.digest_rejects >= 1
        assert counters(rep)["integrity.digest_rejects"] == rep.digest_rejects

    def test_same_corruption_survives_with_integrity_off(self, problem):
        rep = run(
            problem,
            integrity="off",
            max_retries=8,
            message_fault_plan=self.corrupt_plan(),
        ).report
        assert counters(rep)["sim.undetected_corruptions"] > 0

    def test_bitflip_evades_digests_but_not_audit(self, problem):
        blind = run(
            problem,
            integrity="digest",
            max_retries=8,
            message_fault_plan=self.bitflip_plan(),
        ).report
        assert counters(blind)["sim.undetected_corruptions"] > 0
        assert blind.digest_rejects == 0

        audited = run(
            problem,
            integrity="audit",
            audit_fraction=1.0,
            quarantine_threshold=10**6,
            max_retries=8,
            message_fault_plan=self.bitflip_plan(),
        ).report
        assert counters(audited)["sim.undetected_corruptions"] == 0
        assert audited.audits_convicted >= 1

    def test_persistent_corruption_exhausts_cleanly(self, problem):
        # p=1.0: every result mutates in transit, every attempt rejected.
        with pytest.raises(FaultToleranceExhausted):
            run(
                problem,
                integrity="digest",
                max_retries=2,
                message_fault_plan=MessageFaultPlan.random(
                    1.0, seed=0, kinds=("corrupt",)
                ),
            )


class TestAuditSampling:
    def test_partial_audit_is_probabilistic(self, problem):
        """A fractional sample may leave taint behind — the documented
        reason SDC campaigns audit at fraction 1.0."""
        full = run(
            problem, integrity="audit", audit_fraction=1.0, worker_fault_plan=LIAR_1
        ).report
        sampled = run(
            problem, integrity="audit", audit_fraction=0.25, worker_fault_plan=LIAR_1
        ).report
        assert counters(full)["sim.undetected_corruptions"] == 0
        assert (
            counters(sampled)["sim.undetected_corruptions"]
            >= counters(full)["sim.undetected_corruptions"]
        )
        assert sampled.audits_convicted <= full.audits_convicted
