"""Property-based tests of scheduling-theory invariants in the simulator.

Any list schedule of a DAG on ``p`` workers obeys classic bounds:

- makespan >= critical path length (chain bound);
- makespan >= total work / p (area bound);
- makespan <= work/p + critical path (Graham bound for greedy schedules);
- adding workers never hurts a greedy (dynamic) schedule... within the
  family of list schedules this can wiggle, so we assert the weaker,
  always-true monotonicity against the p = 1 serialization.

These hold for arbitrary random costs on the grid patterns the runtime
schedules, which pins the simulator to real scheduling theory rather
than to itself.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.simulated import simulate_level
from repro.dag.library import TriangularPattern, WavefrontPattern
from repro.dag.parser import critical_path
from repro.schedulers.policy import make_policy

shapes = st.tuples(st.integers(1, 8), st.integers(1, 8))
workers = st.integers(1, 6)


def _random_costs(pattern, data):
    return {
        v: data.draw(st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False))
        for v in pattern.vertices()
    }


@given(shape=shapes, p=workers, data=st.data())
@settings(max_examples=40, deadline=None)
def test_dynamic_schedule_obeys_lower_bounds(shape, p, data):
    pattern = WavefrontPattern(*shape)
    costs = _random_costs(pattern, data)
    makespan, busy, idle = simulate_level(pattern, costs, p, make_policy("dynamic", p, shape[1]))
    work = sum(costs.values())
    cp, _ = critical_path(pattern, lambda v: costs[v])
    assert makespan >= cp - 1e-9
    assert makespan >= work / p - 1e-9
    assert math.isclose(busy, work, rel_tol=1e-12)
    assert idle == 0.0  # dynamic never idles while ready


@given(shape=shapes, p=workers, data=st.data())
@settings(max_examples=40, deadline=None)
def test_dynamic_schedule_obeys_graham_bound(shape, p, data):
    pattern = WavefrontPattern(*shape)
    costs = _random_costs(pattern, data)
    makespan, _, _ = simulate_level(pattern, costs, p, make_policy("dynamic", p, shape[1]))
    work = sum(costs.values())
    cp, _ = critical_path(pattern, lambda v: costs[v])
    # Greedy list scheduling: T <= work/p + (1 - 1/p) * cp.
    assert makespan <= work / p + (1 - 1 / p) * cp + 1e-9


@given(n=st.integers(1, 10), p=workers, data=st.data())
@settings(max_examples=30, deadline=None)
def test_triangular_schedules_respect_bounds(n, p, data):
    pattern = TriangularPattern(n)
    costs = _random_costs(pattern, data)
    makespan, _, _ = simulate_level(pattern, costs, p, make_policy("dynamic", p, n))
    work = sum(costs.values())
    cp, _ = critical_path(pattern, lambda v: costs[v])
    assert cp - 1e-9 <= makespan <= work + 1e-9


@given(shape=shapes, data=st.data())
@settings(max_examples=30, deadline=None)
def test_single_worker_serializes_exactly(shape, data):
    pattern = WavefrontPattern(*shape)
    costs = _random_costs(pattern, data)
    makespan, _, _ = simulate_level(pattern, costs, 1, make_policy("dynamic", 1, shape[1]))
    assert math.isclose(makespan, sum(costs.values()))


@given(shape=shapes, p=st.integers(2, 6), data=st.data())
@settings(max_examples=30, deadline=None)
def test_parallel_never_slower_than_serial(shape, p, data):
    pattern = WavefrontPattern(*shape)
    costs = _random_costs(pattern, data)
    serial, _, _ = simulate_level(pattern, costs, 1, make_policy("dynamic", 1, shape[1]))
    parallel, _, _ = simulate_level(pattern, costs, p, make_policy("dynamic", p, shape[1]))
    assert parallel <= serial + 1e-9


@given(shape=shapes, p=workers, data=st.data())
@settings(max_examples=30, deadline=None)
def test_static_policies_complete_and_respect_bounds(shape, p, data):
    """Static schedules finish all work and obey the same lower bounds.

    (Pointwise dominance of dynamic over static is *typical* but not a
    theorem — Graham anomalies exist — so it is asserted on fixed
    instances in the paper-shape tests, not property-wide here.)
    """
    pattern = WavefrontPattern(*shape)
    costs = _random_costs(pattern, data)
    work = sum(costs.values())
    cp, _ = critical_path(pattern, lambda v: costs[v])
    for name in ("bcw", "cw"):
        static, busy, _ = simulate_level(pattern, costs, p, make_policy(name, p, shape[1]))
        assert static >= max(cp, work / p) - 1e-9
        assert static <= work + 1e-9
        assert math.isclose(busy, work, rel_tol=1e-12)
