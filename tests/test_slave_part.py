"""Direct tests of SlavePart: protocol behavior and the slave worker pool.

The master side is scripted over a raw channel, so slave-local behavior
(idle cadence, end handling, stop event, injected process-level faults,
thread-pool scheduling variants) is pinned without the real master's
timing in the way.
"""

import threading

import numpy as np
import pytest

from repro.algorithms import EditDistance
from repro.cluster.faults import FaultPlan, FaultRule
from repro.comm.messages import EndSignal, IdleSignal, TaskAssign, TaskResult
from repro.comm.transport import channel_pair
from repro.dag.partition import partition_pattern
from repro.runtime.slave import SlavePart


@pytest.fixture
def setup():
    problem = EditDistance.random(24, 24, seed=1)
    partition = partition_pattern(problem.pattern(), 12)  # 2x2 blocks
    master_end, slave_end = channel_pair()
    return problem, partition, master_end, slave_end


def make_slave(problem, partition, channel, **kw):
    base = dict(
        slave_id=0,
        channel=channel,
        problem=problem,
        partition=partition,
        thread_partition=6,
        n_threads=2,
        poll_interval=0.005,
    )
    base.update(kw)
    return SlavePart(**base)


def run_slave_async(slave):
    thread = threading.Thread(target=slave.run, daemon=True)
    thread.start()
    return thread


class TestProtocolSide:
    def test_announces_idle_then_computes_then_idles_again(self, setup):
        problem, partition, master, slave_end = setup
        slave = make_slave(problem, partition, slave_end)
        thread = run_slave_async(slave)

        assert isinstance(master.recv(timeout=5.0), IdleSignal)
        state = problem.make_state()
        inputs = problem.extract_inputs(state, partition, (0, 0))
        master.send(TaskAssign((0, 0), 0, inputs))
        result = master.recv(timeout=5.0)
        assert isinstance(result, TaskResult)
        assert result.task_id == (0, 0)
        assert result.epoch == 0
        assert result.elapsed > 0
        assert isinstance(master.recv(timeout=5.0), IdleSignal)
        master.send(EndSignal())
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert slave.stats.tasks == 1

    def test_result_matches_serial_computation(self, setup):
        problem, partition, master, slave_end = setup
        slave = make_slave(problem, partition, slave_end)
        thread = run_slave_async(slave)

        master.recv(timeout=5.0)
        state = problem.make_state()
        inputs = problem.extract_inputs(state, partition, (0, 0))
        master.send(TaskAssign((0, 0), 0, inputs))
        result = master.recv(timeout=5.0)
        expected = problem.evaluator(partition, (0, 0), inputs).run_serial(
            partition.sub_partition((0, 0), 6)
        )
        assert np.array_equal(result.outputs["block"], expected["block"])
        master.recv(timeout=5.0)
        master.send(EndSignal())
        thread.join(timeout=5.0)

    def test_stop_event_interrupts_quiet_wait(self, setup):
        problem, partition, master, slave_end = setup
        stop = threading.Event()
        slave = make_slave(problem, partition, slave_end, stop_event=stop)
        thread = run_slave_async(slave)
        master.recv(timeout=5.0)  # idle; now stay silent
        stop.set()
        thread.join(timeout=5.0)
        assert not thread.is_alive()

    def test_crash_fault_drops_task_but_keeps_serving(self, setup):
        problem, partition, master, slave_end = setup
        plan = FaultPlan([FaultRule("crash", (0, 0), 0)])
        slave = make_slave(problem, partition, slave_end, fault_plan=plan)
        thread = run_slave_async(slave)

        master.recv(timeout=5.0)
        state = problem.make_state()
        inputs = problem.extract_inputs(state, partition, (0, 0))
        master.send(TaskAssign((0, 0), 0, inputs))
        # No result: the next message is the fresh idle signal.
        msg = master.recv(timeout=5.0)
        assert isinstance(msg, IdleSignal)
        # Re-dispatch (epoch 1) succeeds: the rule only matched attempt 0.
        master.send(TaskAssign((0, 0), 1, inputs))
        result = master.recv(timeout=5.0)
        assert isinstance(result, TaskResult)
        assert result.epoch == 1
        master.recv(timeout=5.0)
        master.send(EndSignal())
        thread.join(timeout=5.0)


class TestSlaveWorkerPool:
    def _compute_direct(self, problem, partition, bid, **kw):
        _, slave_end = channel_pair()
        slave = make_slave(problem, partition, slave_end, **kw)
        state = problem.make_state()
        inputs = problem.extract_inputs(state, partition, bid)
        outputs = slave._compute(TaskAssign(bid, 0, inputs))
        expected = problem.evaluator(partition, bid, inputs).run_serial(
            partition.sub_partition(bid, slave.thread_partition)
        )
        assert np.array_equal(outputs["block"], expected["block"])
        return slave

    @pytest.mark.parametrize("n_threads", [1, 2, 4])
    def test_pool_sizes(self, setup, n_threads):
        problem, partition, _, _ = setup
        self._compute_direct(problem, partition, (0, 0), n_threads=n_threads)

    @pytest.mark.parametrize("thread_scheduler", ["dynamic", "bcw", "cw"])
    def test_pool_schedulers(self, setup, thread_scheduler):
        problem, partition, _, _ = setup
        slave = self._compute_direct(
            problem, partition, (0, 0), thread_scheduler=thread_scheduler, n_threads=2
        )
        assert slave.stats.subtasks == 4  # 12x12 block over 6 -> 2x2

    def test_pool_thread_fault_restart(self, setup):
        problem, partition, _, _ = setup
        plan = FaultPlan([FaultRule("crash", (1, 1), 0)])
        slave = self._compute_direct(
            problem, partition, (0, 0),
            thread_fault_plan=plan, subtask_timeout=0.2, n_threads=2,
        )
        assert slave.stats.thread_restarts >= 1
