"""Heavy soak tests: both fault levels at once, many workers, randomized.

Two families live here:

- ``TestCombinedFaultSoak`` (marked ``slow``, runs in the default suite):
  larger worker counts than any other test, simultaneous process-level
  and thread-level fault storms, and repeated runs checking determinism
  of the *results* (schedules may differ; answers may not).
- ``test_chaos_matrix`` (marked ``soak``, opt-in via ``-m soak``): the
  backend x fault-mix x scheduler campaign matrix. Every cell runs a
  seeded chaos campaign and asserts the campaign invariant (oracle-match
  or clean abort, never a hang or a wrong answer). The matrix is
  time-budgeted: once ``REPRO_SOAK_BUDGET`` seconds (default 300) have
  elapsed, remaining cells skip instead of overrunning CI.
"""

import os
import time

import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance, Nussinov
from repro.chaos.campaign import CampaignSpec, run_campaign
from repro.cluster.faults import FaultPlan


@pytest.mark.slow
class TestCombinedFaultSoak:
    def test_both_levels_random_storm(self):
        problem = EditDistance.random(70, 70, seed=11)
        config = RunConfig(
            nodes=5,
            threads_per_node=2,
            backend="threads",
            process_partition=14,
            thread_partition=7,
            task_timeout=0.6,
            subtask_timeout=0.3,
            poll_interval=0.005,
            fault_plan=FaultPlan.random(0.2, seed=1),
            thread_fault_plan=FaultPlan.random(0.05, seed=2),
            max_retries=5,
        )
        run = EasyHPS(config).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.faults_recovered + run.report.thread_restarts > 0

    def test_many_workers_no_faults(self):
        problem = Nussinov.random(80, seed=12)
        run = EasyHPS(RunConfig(nodes=7, threads_per_node=3, backend="threads",
                                process_partition=10, thread_partition=5,
                                poll_interval=0.005)).run(problem)
        assert run.value.score == problem.reference()
        assert sum(run.report.tasks_per_worker.values()) == run.report.n_tasks

    def test_repeated_runs_agree(self):
        problem = EditDistance.random(60, 60, seed=13)
        config = RunConfig(nodes=4, threads_per_node=2, backend="threads",
                           process_partition=15, thread_partition=5,
                           poll_interval=0.005)
        values = {EasyHPS(config).run(problem).value.distance for _ in range(3)}
        assert values == {problem.reference()}


# -- chaos campaign matrix (opt-in: -m soak) ----------------------------------------

SOAK_BUDGET = float(os.environ.get("REPRO_SOAK_BUDGET", "300"))
_SOAK_START = time.monotonic()

FAULT_MIXES = {
    "task-only": dict(task_fault_p=0.15, message_p=0.0, worker_p_die=0.0, worker_p_slow=0.0),
    "message-only": dict(task_fault_p=0.0, message_p=0.15, worker_p_die=0.0, worker_p_slow=0.0),
    "worker-only": dict(task_fault_p=0.0, message_p=0.0, worker_p_die=0.25, worker_p_slow=0.25),
    "combined": dict(task_fault_p=0.1, message_p=0.1, worker_p_die=0.2, worker_p_slow=0.2),
    # Resource tier: I/O faults into the journal (and shm, on the cells
    # that enable it) with no distributed fault pressure, asserting the
    # degradation contract (oracle-match or attributed ResourceExhausted,
    # recoverable journal, clean /dev/shm) across schedulers.
    "resources": dict(
        task_fault_p=0.0, message_p=0.0, worker_p_die=0.0, worker_p_slow=0.0,
        resources=True, io_p_write=0.1, io_p_fsync=0.05, io_p_shm=0.2,
    ),
    # Resource + distributed pressure composed: journal degradation
    # racing worker deaths and message loss must still settle cleanly.
    "resources+combined": dict(
        task_fault_p=0.05, message_p=0.05, worker_p_die=0.1, worker_p_slow=0.1,
        resources=True, io_p_write=0.06, io_p_fsync=0.03, io_p_shm=0.1,
    ),
}

#: Static policies are included on purpose: with a dead or blacklisted
#: worker, statically-bound tasks can become unservable, and the cell
#: then asserts the clean-abort path instead of the recovery path.
SOAK_SCHEDULERS = ("dynamic", "dynamic-lcf", "bcw")
SOAK_BACKENDS = ("simulated", "threads", "processes")


def _budget_left() -> float:
    return SOAK_BUDGET - (time.monotonic() - _SOAK_START)


@pytest.mark.soak
@pytest.mark.parametrize("batch", [False, True], ids=["batch-off", "batch-on"])
@pytest.mark.parametrize("scheduler", SOAK_SCHEDULERS)
@pytest.mark.parametrize("mix", sorted(FAULT_MIXES))
@pytest.mark.parametrize("backend", SOAK_BACKENDS)
def test_chaos_matrix(backend, mix, scheduler, batch):
    left = _budget_left()
    if left <= 0:
        pytest.skip(f"soak budget ({SOAK_BUDGET:.0f}s) exhausted")
    spec = CampaignSpec(
        backends=(backend,),
        seeds=2,
        size=40,
        scheduler=scheduler,
        run_timeout=min(60.0, max(10.0, left)),
        batch_wave=batch,
        # Batched processes cells also flip the shm plane on, so the
        # chaos surface covers BatchAssign/BatchResult envelopes carrying
        # BlockRef payloads (and the segment-leak invariant on abort).
        shm=batch and backend == "processes",
        **FAULT_MIXES[mix],
    )
    run_campaign(spec).raise_if_failed()
