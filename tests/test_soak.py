"""Heavy soak tests: both fault levels at once, many workers, randomized.

Marked slow. These are the "leave it running" confidence tests: larger
worker counts than any other test, simultaneous process-level and
thread-level fault storms, and repeated runs checking determinism of the
*results* (schedules may differ; answers may not).
"""

import pytest

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance, Nussinov
from repro.cluster.faults import FaultPlan


@pytest.mark.slow
class TestCombinedFaultSoak:
    def test_both_levels_random_storm(self):
        problem = EditDistance.random(70, 70, seed=11)
        config = RunConfig(
            nodes=5,
            threads_per_node=2,
            backend="threads",
            process_partition=14,
            thread_partition=7,
            task_timeout=0.6,
            subtask_timeout=0.3,
            poll_interval=0.005,
            fault_plan=FaultPlan.random(0.2, seed=1),
            thread_fault_plan=FaultPlan.random(0.05, seed=2),
            max_retries=5,
        )
        run = EasyHPS(config).run(problem)
        assert run.value.distance == problem.reference()
        assert run.report.faults_recovered + run.report.thread_restarts > 0

    def test_many_workers_no_faults(self):
        problem = Nussinov.random(80, seed=12)
        run = EasyHPS(RunConfig(nodes=7, threads_per_node=3, backend="threads",
                                process_partition=10, thread_partition=5,
                                poll_interval=0.005)).run(problem)
        assert run.value.score == problem.reference()
        assert sum(run.report.tasks_per_worker.values()) == run.report.n_tasks

    def test_repeated_runs_agree(self):
        problem = EditDistance.random(60, 60, seed=13)
        config = RunConfig(nodes=4, threads_per_node=2, backend="threads",
                           process_partition=15, thread_partition=5,
                           poll_interval=0.005)
        values = {EasyHPS(config).run(problem).value.distance for _ in range(3)}
        assert values == {problem.reference()}
