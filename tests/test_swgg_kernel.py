"""Direct unit tests of the SWGG kernel (the trickiest indexing in the repo).

Everything else tests SWGG through the problem class; here the kernel is
driven directly against a brute-force cell evaluator, including partial
regions, non-zero block origins, and degenerate gap functions.
"""

import numpy as np
import pytest

from repro.algorithms.kernels import swgg_region


def brute_force_H(a_scores, gap, m, n):
    """Reference H over an (m+1, n+1) matrix; a_scores[i-1, j-1] is the
    substitution score of matrix cell (i, j)."""
    H = np.zeros((m + 1, n + 1))
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            best = 0.0
            best = max(best, H[i - 1, j - 1] + a_scores[i - 1, j - 1])
            for k in range(j):
                best = max(best, H[i, k] - gap[j - k])
            for k in range(i):
                best = max(best, H[k, j] - gap[i - k])
            H[i, j] = best
    return H


def run_kernel_block(H, scores, gap, R0, C0, h, w, regions=None):
    """Execute one block (matrix rows R0..R0+h-1, cols C0..C0+w-1) through
    the kernel, shipping the strips exactly as the problem class does."""
    Hrow = H[R0 : R0 + h, 0:C0]
    Hcol = H[0:R0, C0 : C0 + w]
    Hloc = np.empty((h + 1, w + 1))
    Hloc[0, :] = H[R0 - 1, C0 - 1 : C0 + w]
    Hloc[1:, 0] = H[R0 : R0 + h, C0 - 1]
    sub = scores[R0 - 1 : R0 - 1 + h, C0 - 1 : C0 - 1 + w]
    for rows, cols in regions or [(range(h), range(w))]:
        swgg_region(Hloc, Hrow, Hcol, sub, gap, C0, R0, rows, cols)
    return Hloc[1:, 1:]


@pytest.fixture
def instance():
    rng = np.random.default_rng(3)
    m = n = 9
    scores = rng.choice([2.0, -1.0], size=(m, n))
    gap = 2.0 + 0.5 * np.arange(max(m, n) + 1)
    gap[0] = 1e30
    return m, n, scores, gap


class TestWholeMatrixAsOneBlock:
    def test_matches_brute_force(self, instance):
        m, n, scores, gap = instance
        ref = brute_force_H(scores, gap, m, n)
        H = np.zeros((m + 1, n + 1))
        block = run_kernel_block(H, scores, gap, 1, 1, m, n)
        assert np.allclose(block, ref[1:, 1:])


class TestInteriorBlock:
    def test_block_with_filled_prefixes(self, instance):
        m, n, scores, gap = instance
        ref = brute_force_H(scores, gap, m, n)
        H = ref.copy()
        R0, C0, h, w = 4, 5, 3, 4
        H[R0 : R0 + h, C0 : C0 + w] = -999.0  # the block must be recomputed
        block = run_kernel_block(H, scores, gap, R0, C0, h, w)
        assert np.allclose(block, ref[R0 : R0 + h, C0 : C0 + w])

    def test_region_by_region_wavefront(self, instance):
        m, n, scores, gap = instance
        ref = brute_force_H(scores, gap, m, n)
        H = ref.copy()
        R0, C0, h, w = 2, 3, 4, 6
        H[R0 : R0 + h, C0 : C0 + w] = -999.0
        regions = [
            (range(a, min(a + 2, h)), range(b, min(b + 3, w)))
            for a in range(0, h, 2)
            for b in range(0, w, 3)
        ]
        # Wavefront order: sort sub-regions by top-left corner diagonal.
        regions.sort(key=lambda rc: (rc[0].start + rc[1].start, rc[0].start))
        block = run_kernel_block(H, scores, gap, R0, C0, h, w, regions=regions)
        assert np.allclose(block, ref[R0 : R0 + h, C0 : C0 + w])


class TestGapFunctionEdgeCases:
    def test_huge_gaps_reduce_to_diagonal_only(self):
        m = n = 6
        rng = np.random.default_rng(0)
        scores = rng.choice([3.0, -1.0], size=(m, n))
        gap = np.full(max(m, n) + 1, 1e30)
        ref = brute_force_H(scores, gap, m, n)
        H = np.zeros((m + 1, n + 1))
        block = run_kernel_block(H, scores, gap, 1, 1, m, n)
        assert np.allclose(block, ref[1:, 1:])
        # With gaps impossible, every cell is a pure diagonal chain.
        assert block[0, 0] == max(0.0, scores[0, 0])

    def test_zero_gap_pathology(self):
        """gap == 0 for every length: score can teleport along rows/cols."""
        m = n = 5
        scores = np.full((m, n), -1.0)
        scores[2, 2] = 5.0
        gap = np.zeros(max(m, n) + 1)
        gap[0] = 1e30
        ref = brute_force_H(scores, gap, m, n)
        H = np.zeros((m + 1, n + 1))
        block = run_kernel_block(H, scores, gap, 1, 1, m, n)
        assert np.allclose(block, ref[1:, 1:])
        # The single high score propagates right/down undiminished.
        assert block[4, 2] == 5.0 and block[2, 4] == 5.0
