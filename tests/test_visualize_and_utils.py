"""Unit tests for ASCII visualization and small utilities."""

import pytest

from repro.dag.library import TriangularPattern, WavefrontPattern
from repro.dag.parser import DAGParser
from repro.dag.visualize import describe, render_grid
from repro.utils.errors import ConfigError, ReproError, SchedulerError
from repro.utils.validate import check_in, check_nonnegative, check_positive


class TestRenderGrid:
    def test_initial_state(self):
        p = WavefrontPattern(2, 3)
        out = render_grid(p, DAGParser(p))
        assert out == "o . .\n. . ."

    def test_after_completions(self):
        p = WavefrontPattern(2, 2)
        parser = DAGParser(p)
        parser.complete((0, 0))
        out = render_grid(p, parser)
        assert out == "# o\no ."

    def test_triangular_leaves_blanks(self):
        p = TriangularPattern(3)
        out = render_grid(p)
        assert out.splitlines()[1].startswith(" ")

    def test_without_parser_all_dots(self):
        assert set(render_grid(WavefrontPattern(2, 2))) <= {".", " ", "\n"}

    def test_rejects_non_2d(self):
        from repro.dag.library import ChainPattern

        with pytest.raises(ValueError):
            render_grid(ChainPattern(3))


class TestDescribe:
    def test_mentions_counts(self):
        text = describe(WavefrontPattern(3, 3))
        assert "vertices=9" in text
        assert "edges=12" in text
        assert "sources=1" in text


class TestValidators:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ConfigError, match="x must be > 0"):
            check_positive("x", 0)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ConfigError):
            check_nonnegative("x", -1)

    def test_check_in(self):
        check_in("mode", "a", ("a", "b"))
        with pytest.raises(ConfigError, match="mode must be one of"):
            check_in("mode", "c", ("a", "b"))


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        from repro.utils.errors import (
            FaultToleranceExhausted,
            PartitionError,
            PatternError,
            TransportError,
        )

        for exc in (PatternError, PartitionError, SchedulerError, TransportError,
                    FaultToleranceExhausted, ConfigError):
            assert issubclass(exc, ReproError)

    def test_lazy_top_level_exports(self):
        import repro

        assert repro.RunConfig is not None
        assert repro.EasyHPS is not None
        assert repro.__version__
        with pytest.raises(AttributeError):
            repro.nonexistent_attribute
