"""Unit tests for the worker-pool data structures (Section V-A)."""

import threading
import time

import pytest

from repro.runtime.worker_pool import (
    ComputableStack,
    FinishedStack,
    OvertimeEntry,
    OvertimeQueue,
    RegisterTable,
)
from repro.schedulers.policy import BlockCyclicWavefrontPolicy, DynamicPolicy
from repro.utils.errors import SchedulerError


class TestComputableStack:
    def test_lifo_pop(self):
        s = ComputableStack()
        s.push_many([(0, 0), (0, 1), (1, 0)])
        p = DynamicPolicy(1)
        assert s.pop_eligible(0, p) == (1, 0)
        assert s.pop_eligible(0, p) == (0, 1)
        assert len(s) == 1

    def test_policy_filtered_pop(self):
        s = ComputableStack()
        s.push_many([(0, 0), (0, 1)])
        p = BlockCyclicWavefrontPolicy(2)
        assert s.pop_eligible(1, p) == (0, 1)
        assert s.pop_eligible(1, p, timeout=0.01) is None  # nothing owned left
        assert s.snapshot() == ((0, 0),)

    def test_close_unblocks_waiters(self):
        s = ComputableStack()
        result = []

        def waiter():
            result.append(s.pop_eligible(0, DynamicPolicy(1)))

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        s.close()
        t.join(timeout=2.0)
        assert result == [None]

    def test_push_wakes_blocked_popper(self):
        s = ComputableStack()
        result = []

        def waiter():
            result.append(s.pop_eligible(0, DynamicPolicy(1)))

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        s.push((3, 3))
        t.join(timeout=2.0)
        assert result == [(3, 3)]

    def test_concurrent_poppers_unique_items(self):
        s = ComputableStack()
        items = [(i, 0) for i in range(200)]
        s.push_many(items)
        got = []
        lock = threading.Lock()

        def popper():
            while True:
                item = s.pop_eligible(0, DynamicPolicy(1), timeout=0.05)
                if item is None:
                    return
                with lock:
                    got.append(item)

        threads = [threading.Thread(target=popper) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(got) == items  # every item exactly once


class TestFinishedStack:
    def test_lifo_and_close(self):
        f = FinishedStack()
        f.push((0, 0))
        f.push((1, 1))
        assert f.pop() == (1, 1)
        assert f.pop() == (0, 0)
        f.close()
        assert f.pop() is None

    def test_timeout(self):
        f = FinishedStack()
        assert f.pop(timeout=0.01) is None


class TestOvertimeQueue:
    def test_due_respects_deadlines(self):
        q = OvertimeQueue()
        q.push(OvertimeEntry(deadline=10.0, task_id=(0, 0), epoch=0))
        q.push(OvertimeEntry(deadline=5.0, task_id=(1, 1), epoch=0))
        assert q.due(4.0) == []
        due = q.due(7.0)
        assert [e.task_id for e in due] == [(1, 1)]
        assert len(q) == 1
        assert q.next_deadline() == 10.0

    def test_due_pops_in_deadline_order(self):
        q = OvertimeQueue()
        for d in (3.0, 1.0, 2.0):
            q.push(OvertimeEntry(deadline=d, task_id=(int(d), 0), epoch=0))
        assert [e.deadline for e in q.due(5.0)] == [1.0, 2.0, 3.0]

    def test_empty(self):
        q = OvertimeQueue()
        assert q.next_deadline() is None
        assert q.due(100.0) == []


class TestRegisterTable:
    def test_register_finish_cycle(self):
        r = RegisterTable()
        epoch = r.register((0, 0), worker_id=2)
        assert epoch == 0
        assert r.is_registered((0, 0))
        assert r.is_registered((0, 0), epoch=0)
        assert r.finish((0, 0), 0)
        assert not r.is_registered((0, 0))

    def test_epochs_count_dispatches(self):
        r = RegisterTable()
        assert r.register((0, 0), 0) == 0
        r.cancel((0, 0), 0)
        assert r.register((0, 0), 1) == 1
        assert r.attempts((0, 0)) == 2

    def test_stale_epoch_rejected(self):
        r = RegisterTable()
        r.register((0, 0), 0)
        r.cancel((0, 0), 0)
        r.register((0, 0), 1)
        assert not r.finish((0, 0), 0)  # the timed-out worker's late result
        assert r.finish((0, 0), 1)

    def test_double_register_rejected(self):
        r = RegisterTable()
        r.register((0, 0), 0)
        with pytest.raises(SchedulerError):
            r.register((0, 0), 1)

    def test_unknown_finish_rejected(self):
        r = RegisterTable()
        assert not r.finish((9, 9), 0)
        assert r.attempts((9, 9)) == 0
