"""Arrival-trace generators and the trace replay harness."""

import pytest

from repro.serve import ServeDaemon
from repro.utils.errors import ConfigError
from repro.workloads import (
    TRACE_KINDS,
    heavy_tail_trace,
    make_trace,
    replay,
    throughput,
)


class TestTraceGenerators:
    def test_all_kinds_generate_and_are_deterministic(self):
        for kind in TRACE_KINDS:
            a = make_trace(kind, 20, seed=7)
            b = make_trace(kind, 20, seed=7)
            assert a == b, f"{kind} trace is not a pure function of its seed"
            assert len(a) == 20
            times = [e.t for e in a]
            assert times == sorted(times), f"{kind} arrivals not ordered"
            assert all(e.t >= 0 for e in a)

    def test_different_seed_different_trace(self):
        assert make_trace("heavy-tail", 20, seed=0) != make_trace(
            "heavy-tail", 20, seed=1
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            make_trace("flat", 5)

    def test_heavy_tail_sizes_bounded_and_skewed(self):
        trace = heavy_tail_trace(300, seed=3, size_min=16, size_max=96)
        sizes = [e.size for e in trace]
        assert min(sizes) >= 16 and max(sizes) <= 96
        small = sum(1 for s in sizes if s <= 32)
        assert small > len(sizes) / 2, "bounded Pareto should skew small"
        assert max(sizes) > 48, "the heavy tail should reach large sizes"

    def test_spec_dict_with_overrides(self):
        event = make_trace("poisson-burst", 1, seed=0)[0]
        spec = event.spec_dict(nodes=2, deadline=5.0)
        assert spec["tenant"] == event.tenant
        assert spec["size"] == event.size
        assert spec["nodes"] == 2 and spec["deadline"] == 5.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            make_trace("heavy-tail", 0)
        with pytest.raises(ConfigError):
            heavy_tail_trace(5, size_min=1, size_max=0)
        with pytest.raises(ConfigError):
            make_trace("poisson-burst", 5, tenants=())


class TestReplay:
    def test_replay_batch_reports_outcomes_and_latency(self):
        daemon = ServeDaemon(workers=3, queue_cap=64, task_timeout=5.0)
        daemon.start()
        try:
            trace = make_trace(
                "heavy-tail", 8, seed=2, size_min=16, size_max=28,
                algos=("lcs",),
            )
            report = replay(
                daemon, trace, spec_overrides={"nodes": 2}, wait_timeout=90.0,
            )
            assert report.submitted == 8
            assert report.accepted + report.shed == 8
            assert report.drained_idle
            done = sum(per.get("done", 0) for per in report.tenants.values())
            assert done == report.accepted
            # The latency fold must surface histogram summaries per tenant.
            with_latency = [
                per for per in report.tenants.values() if per.get("accepted")
            ]
            assert with_latency
            for per in with_latency:
                assert "wait_p50" in per and "slowdown_p95" in per
            acc_rate, done_rate = throughput(report, elapsed=10.0)
            assert acc_rate == pytest.approx(report.accepted / 10.0)
            assert done_rate == pytest.approx(done / 10.0)
        finally:
            daemon.drain(20.0)

    def test_replay_sabotaged_tenant_gets_chaos_profile(self):
        daemon = ServeDaemon(workers=2, queue_cap=64, task_timeout=5.0)
        daemon.start()
        try:
            trace = make_trace(
                "poisson-burst", 6, seed=4, size=20, algos=("lcs",),
                tenants=("clean", "dirty"),
            )
            assert any(e.tenant == "dirty" for e in trace)
            report = replay(
                daemon, trace,
                spec_overrides={"nodes": 2},
                chaos_tenants={"dirty": {"worker_p_slow": 0.2, "seed": 1}},
                wait_timeout=90.0,
            )
            assert report.drained_idle
            for snap in daemon.jobs():
                record = daemon.get(snap["job_id"])
                if record.spec.tenant == "dirty":
                    assert record.spec.chaos == {"worker_p_slow": 0.2, "seed": 1}
                else:
                    assert record.spec.chaos == {}
        finally:
            daemon.drain(20.0)
